"""Sharded multi-process broadcast: past the single-event-loop ceiling.

:class:`~repro.transport.broadcast.BroadcastPublisher` marshals each
record once, but one ``selectors`` thread does every per-client queue
append and every ``sendmsg`` — encode-once fan-out is flat *per
client*, yet aggregate throughput is capped at one core by the GIL.
:class:`ShardedBroadcastServer` keeps the paper's amortization story
intact fleet-wide while breaking that ceiling:

* **one publisher process** owns the only
  :class:`~repro.pbio.context.IOContext` that ever encodes — each
  ``publish()`` runs ``encode_wire_parts`` exactly once (zero-copy
  spill segments included) and hands the *same* frame bytes to every
  worker over a length-prefixed control socket;
* **N worker processes** each run a full
  :class:`~repro.transport.eventloop.EventLoopServer` serving their
  shard of subscribers, with the per-shard backpressure policies
  (``block`` / ``drop-oldest`` / ``disconnect-slow``) unchanged;
* **one shared format authority** — the publisher's
  :class:`~repro.pbio.format_server.FormatServer` is the source of
  truth; workers hold read-through replicas fed over the same control
  sockets (``REG``/``EVOLVE`` push on first publish, ``FMT_MISS``
  pull on a subscriber's cold FMT_REQ), so FMT_REQ/LIN_REQ are
  answered from every shard without a second registration step.

Two accept-distribution mechanisms, both implemented:

* ``reuseport`` — every worker binds its own ``SO_REUSEPORT`` listener
  to the shared port and the kernel balances new connections;
* ``fdpass``   — a single acceptor thread in the publisher accepts and
  round-robins each connected fd to a worker over ``SCM_RIGHTS``.

``mode="auto"`` picks ``reuseport`` where :func:`reuseport_available`
proves both the socket option and its load-balancing semantics, else
falls back to ``fdpass`` (which works anywhere ``AF_UNIX`` ancillary
data does).  Workers are ``multiprocessing`` *spawn* children — no
forked locks, no inherited shard sockets (every event-loop fd is
``FD_CLOEXEC``, see :func:`repro.transport.eventloop.set_cloexec`).

Version evolution rides along: workers negotiate LIN_REQ locally
against the replicated lineage and report pins upstream; the publisher
then down-converts **once per pinned version per message** (never per
subscriber) and ships the variant frames tagged with their version, so
a mixed-version fleet still costs one encode per version fleet-wide.
"""

from __future__ import annotations

import enum
import json
import multiprocessing
import os
import socket
import struct
import sys
import threading
import time
from dataclasses import dataclass

from repro.errors import ProtocolError, TransportError
from repro.obs.spans import observe_phase, sample_t0
from repro.pbio.context import IOContext
from repro.pbio.evolution import down_converter
from repro.pbio.format import FormatID, IOFormat
from repro.pbio.format_server import FormatServer
from repro.transport.broadcast import (
    BackpressurePolicy, BroadcastPublisher, BroadcastStats,
)
from repro.transport.eventloop import ClientHandle, set_cloexec
from repro.transport.messages import (
    MAX_FRAME, FrameType, frame_bytes,
)

#: environment marker stamped on worker processes so an external
#: reaper (scripts/reap_shard_workers.py) can find orphans by
#: scanning /proc/<pid>/environ
WORKER_ENV_MARKER = "REPRO_SHARD_WORKER"

_U32 = struct.Struct(">I")
_CTL_HEADER = struct.Struct(">IB")   # length (kind+payload) | kind
_MAX_CTL_FRAME = MAX_FRAME + 4096    # one data frame + headroom


class Ctl(enum.IntEnum):
    """Control-plane message kinds on the publisher<->worker socket."""

    # publisher -> worker
    REG = 1        # fid | name | canonical metadata (replicate format)
    EVOLVE = 2     # name | old fid | new fid | new metadata (lineage)
    BCAST = 3      # flags | fid | name | one whole wire frame
    CUTOVER = 4    # name | new fid (re-announce to every shard client)
    BARRIER = 5    # seq (reply ACK once shard queues have drained)
    STATS_REQ = 6  # seq (reply STATS_RSP with a JSON snapshot)
    FMT_FAIL = 7   # fid (publisher cannot resolve a FMT_MISS either)
    CONN = 8       # fd-passing: addr text; the fd rides as SCM_RIGHTS
    STOP = 9       # shut the shard down (BYE + graceful close)
    # worker -> publisher
    STARTED = 20   # port (reuseport) or 0 (fdpass): shard is serving
    ACK = 21       # seq | ok (barrier complete)
    STATS_RSP = 22  # seq | JSON snapshot
    COUNT = 23     # clients | accepted | closed (shard census update)
    PIN = 24       # name | fid (a subscriber negotiated this version)
    UNPIN = 25     # name | fid (that subscriber went away)
    FMT_MISS = 26  # fid (subscriber FMT_REQ the replica cannot serve)
    STOPPED = 27   # shard shut down cleanly


#: BCAST flag bits
_F_PRIMARY = 1   # current-version frame (clients with no pin get it)
_F_BATCH = 2     # DATA_BATCH payload (informational; frame is whole)


def _pack_name(name: str) -> bytes:
    raw = name.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise ProtocolError(f"format name too long ({len(raw)} bytes)")
    return struct.pack(">H", len(raw)) + raw


def _unpack_name(payload: bytes, offset: int) -> tuple[str, int]:
    if offset + 2 > len(payload):
        raise ProtocolError("control frame truncated at name length")
    (n,) = struct.unpack_from(">H", payload, offset)
    offset += 2
    if offset + n > len(payload):
        raise ProtocolError("control frame truncated at name")
    return payload[offset:offset + n].decode("utf-8"), offset + n


def _take_fid(payload: bytes, offset: int) -> tuple[FormatID, int]:
    if offset + 8 > len(payload):
        raise ProtocolError("control frame truncated at format id")
    return FormatID.from_bytes(payload[offset:offset + 8]), offset + 8


class ControlSocket:
    """Length-prefixed control messages over one stream socket.

    Sends are serialized under a lock so the publisher thread, the
    acceptor thread and FMT_MISS replies never interleave partial
    writes.  ``send_fd`` attaches an ``SCM_RIGHTS`` fd to its frame's
    first byte; because all sends are ordered, the k-th CONN frame a
    worker parses corresponds to the k-th fd it received — the reader
    therefore *always* uses ``recv_fds`` so ancillary data is never
    truncated away.
    """

    def __init__(self, sock: socket.socket) -> None:
        self.sock = sock
        self._send_lock = threading.Lock()
        self._buffer = bytearray()
        self._fds: list[int] = []

    def fileno(self) -> int:
        return self.sock.fileno()

    def send(self, kind: int, payload: bytes = b"") -> None:
        frame = _CTL_HEADER.pack(len(payload) + 1, kind) + payload
        with self._send_lock:
            self.sock.sendall(frame)

    def send_fd(self, kind: int, payload: bytes, fd: int) -> None:
        frame = _CTL_HEADER.pack(len(payload) + 1, kind) + payload
        with self._send_lock:
            # the fd attaches to the frame's leading bytes; sendall
            # the remainder under the same lock so frames stay whole
            sent = socket.send_fds(self.sock, [frame], [fd])
            if sent < len(frame):
                self.sock.sendall(frame[sent:])

    def recv(self, timeout: float | None = None) \
            -> tuple[int, bytes, int | None] | None:
        """One ``(kind, payload, fd or None)``; None at EOF."""
        self.sock.settimeout(timeout)
        while True:
            if len(self._buffer) >= 5:
                (length,) = _U32.unpack_from(self._buffer)
                if length == 0 or length > _MAX_CTL_FRAME:
                    raise ProtocolError(
                        f"bad control frame length {length}")
                if len(self._buffer) >= 4 + length:
                    kind = self._buffer[4]
                    payload = bytes(self._buffer[5:4 + length])
                    del self._buffer[:4 + length]
                    fd = self._fds.pop(0) if kind == Ctl.CONN and \
                        self._fds else None
                    return kind, payload, fd
            try:
                data, fds, _flags, _addr = socket.recv_fds(
                    self.sock, 256 * 1024, 16)
            except (TimeoutError, socket.timeout):
                raise
            except OSError:
                return None
            for fd in fds:
                os.set_inheritable(fd, False)
            self._fds.extend(fds)
            if not data:
                return None
            self._buffer.extend(data)

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass
        for fd in self._fds:
            try:
                os.close(fd)
            except OSError:
                pass
        self._fds.clear()


# ---------------------------------------------------------------------------
# SO_REUSEPORT capability probe
# ---------------------------------------------------------------------------

def reuseport_available(socket_module=socket,
                        platform: str | None = None) \
        -> tuple[bool, str]:
    """Can ``SO_REUSEPORT`` shard accepted connections here?

    Three gates, probed in order:

    1. the constant exists in *socket_module*;
    2. the platform is known to **balance** TCP connections across
       same-port listeners (Linux >= 3.9 does; BSDs accept the option
       with different, non-balancing semantics, so they fall back);
    3. a live double-bind probe on loopback succeeds (seccomp/container
       policies can refuse what the libc advertises).

    Returns ``(ok, reason)``; *reason* names the failing gate so the
    auto-selected fallback is explainable from logs.
    """
    if platform is None:
        platform = sys.platform
    if not hasattr(socket_module, "SO_REUSEPORT"):
        return False, "SO_REUSEPORT not defined by this platform"
    if not platform.startswith("linux"):
        return False, (f"no balancing guarantee for SO_REUSEPORT on "
                       f"{platform}")
    probe_a = probe_b = None
    try:
        probe_a = socket_module.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        probe_a.setsockopt(socket.SOL_SOCKET,
                           socket_module.SO_REUSEPORT, 1)
        probe_a.bind(("127.0.0.1", 0))
        probe_a.listen(1)
        port = probe_a.getsockname()[1]
        probe_b = socket_module.socket(socket.AF_INET,
                                       socket.SOCK_STREAM)
        probe_b.setsockopt(socket.SOL_SOCKET,
                           socket_module.SO_REUSEPORT, 1)
        probe_b.bind(("127.0.0.1", port))
        probe_b.listen(1)
    except OSError as exc:
        return False, f"double-bind probe failed: {exc}"
    finally:
        for probe in (probe_a, probe_b):
            if probe is not None:
                try:
                    probe.close()
                except OSError:
                    pass
    return True, "SO_REUSEPORT balances same-port listeners"


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------

@dataclass
class WorkerConfig:
    """Everything a spawned shard worker needs (picklable)."""

    index: int
    mode: str                     # "reuseport" | "fdpass"
    host: str
    port: int                     # shared port (reuseport) or 0
    policy: str
    max_queue_bytes: int
    block_timeout: float
    max_frame_len: int

    @property
    def label(self) -> str:
        return f"w{self.index}"


class _ShardWorkerPublisher(BroadcastPublisher):
    """The per-shard fan-out engine inside a worker process.

    A :class:`BroadcastPublisher` whose encode paths are never used:
    frames arrive pre-marshaled from the publisher process and are
    delivered through :meth:`broadcast_frame`.  Everything else —
    bounded-queue backpressure, FMT_RSP pre-announcement, LIN_REQ
    negotiation, malformed-frame accounting — is inherited unchanged,
    so per-shard semantics match the single-process server exactly.
    """

    def __init__(self, context: IOContext, upstream: ControlSocket,
                 **kwargs) -> None:
        super().__init__(context, **kwargs)
        self._upstream = upstream
        #: fids subscribers asked for that the replica cannot serve
        #: yet: fid -> client ids awaiting a FMT_RSP
        self._pending_fmt: dict[FormatID, list[int]] = {}
        self._pending_lock = threading.Lock()

    # -- shard data plane (control thread) ----------------------------------

    def broadcast_frame(self, name: str, fid: FormatID, frame: bytes,
                        primary: bool) -> int:
        """Queue one pre-encoded wire frame to every shard subscriber
        on the matching version; returns subscribers reached."""
        t0 = sample_t0()
        reached = 0
        for client in self.server.clients():
            target = client.negotiated.get(name)
            if not (target is None and primary or target == fid):
                continue
            if fid not in client.announced:
                self._announce_id(client, fid)
            if self._offer(client, frame):
                reached += 1
        if t0:
            observe_phase("transport", t0)
        self.stats.count("messages_broadcast")
        self.stats.count("frames_enqueued", reached)
        self.stats.count("bytes_queued", reached * len(frame))
        self.stats.max_update("subscriber_high_water",
                              self.server.client_count)
        return reached

    def shard_cutover(self, name: str, new_fid: FormatID) -> int:
        """Re-announce *name*'s new version to every shard subscriber
        (the lineage was already replicated via EVOLVE)."""
        from repro.transport.messages import encode_lineage_rsp
        chain = self.context.format_server.lineage(name)
        reached = 0
        for client in self.server.clients():
            if new_fid not in client.announced:
                self._announce_id(client, new_fid)
            pinned = client.negotiated.get(name)
            chosen = pinned if pinned is not None else new_fid
            payload = encode_lineage_rsp(
                name, chosen, chain if chosen in chain else ())
            if self.server.enqueue(
                    client, frame_bytes(FrameType.LIN_RSP, payload),
                    droppable=False):
                reached += 1
        self.stats.count("cutovers")
        return reached

    def resolve_pending(self, fid: FormatID, ok: bool) -> None:
        """A REG (or FMT_FAIL) for *fid* arrived from the publisher:
        answer the subscribers whose FMT_REQ was parked on it."""
        with self._pending_lock:
            waiting = self._pending_fmt.pop(fid, [])
        if not waiting:
            return
        by_id = {c.id: c for c in self.server.clients()}
        for client_id in waiting:
            client = by_id.get(client_id)
            if client is None:
                continue
            if ok:
                self._announce_id(client, fid)
            else:
                self.server.enqueue(
                    client,
                    frame_bytes(FrameType.FMT_ERR,
                                f"no format registered under id "
                                f"{fid}".encode()),
                    droppable=False)

    # -- upstream reports ----------------------------------------------------

    def _send_up(self, kind: int, payload: bytes = b"") -> None:
        try:
            self._upstream.send(kind, payload)
        except OSError:
            pass  # publisher is gone; the control loop will exit

    def _census(self) -> None:
        server = self.server
        self._send_up(Ctl.COUNT, struct.pack(
            ">III", server.client_count, server.clients_accepted,
            server.clients_closed))

    # -- inherited hooks -----------------------------------------------------

    def on_connect(self, client: ClientHandle) -> None:
        super().on_connect(client)
        self._census()

    def on_disconnect(self, client: ClientHandle,
                      reason) -> None:
        for name, fid in list(client.negotiated.items()):
            self._send_up(Ctl.UNPIN, _pack_name(name) + fid.to_bytes())
        self._census()

    def _on_negotiated(self, client: ClientHandle, name: str,
                       chosen: FormatID) -> None:
        self._send_up(Ctl.PIN, _pack_name(name) + chosen.to_bytes())

    def on_frame(self, client: ClientHandle, frame) -> None:
        if frame.type == FrameType.FMT_REQ and len(frame.payload) == 8:
            fid = FormatID.from_bytes(frame.payload)
            try:
                self.context.format_server.lookup_bytes(fid)
            except Exception:
                # read-through miss: park the request, ask upstream
                with self._pending_lock:
                    waiters = self._pending_fmt.setdefault(fid, [])
                    first = not waiters
                    waiters.append(client.id)
                if first:
                    self._send_up(Ctl.FMT_MISS, fid.to_bytes())
                return
        super().on_frame(client, frame)


class _WorkerRuntime:
    """Control loop of one shard worker process."""

    def __init__(self, ctl: ControlSocket,
                 config: WorkerConfig) -> None:
        self.ctl = ctl
        self.config = config
        self.replica = FormatServer()
        self.context = IOContext(format_server=self.replica)
        kwargs = dict(policy=config.policy,
                      max_queue_bytes=config.max_queue_bytes,
                      block_timeout=config.block_timeout,
                      max_frame_len=config.max_frame_len)
        if config.mode == "reuseport":
            listener = socket.socket(socket.AF_INET,
                                     socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEPORT, 1)
            listener.bind((config.host, config.port))
            listener.listen(512)
            self.publisher = _ShardWorkerPublisher(
                self.context, ctl, listener_socket=listener, **kwargs)
        else:
            self.publisher = _ShardWorkerPublisher(
                self.context, ctl, listen=False, **kwargs)

    def run(self) -> None:
        self.publisher.start()
        self.ctl.send(Ctl.STARTED,
                      struct.pack(">H", self.publisher.port or 0))
        try:
            while True:
                msg = self.ctl.recv(None)
                if msg is None:
                    break  # publisher died: shut the shard down
                kind, payload, fd = msg
                if kind == Ctl.STOP:
                    self._shutdown()
                    self.ctl.send(Ctl.STOPPED)
                    break
                self._dispatch(kind, payload, fd)
        finally:
            self._shutdown()

    def _shutdown(self) -> None:
        if not self.publisher._closed:
            self.publisher.close(timeout=5.0)

    def _dispatch(self, kind: int, payload: bytes,
                  fd: int | None) -> None:
        if kind == Ctl.BCAST:
            flags = payload[0]
            fid, offset = _take_fid(payload, 1)
            name, offset = _unpack_name(payload, offset)
            self.publisher.broadcast_frame(
                name, fid, payload[offset:], bool(flags & _F_PRIMARY))
        elif kind == Ctl.REG:
            fid, offset = _take_fid(payload, 0)
            _name, offset = _unpack_name(payload, offset)
            self.replica.import_bytes(payload[offset:])
            self.publisher.resolve_pending(fid, ok=True)
        elif kind == Ctl.EVOLVE:
            _name, offset = _unpack_name(payload, 0)
            old_fid, offset = _take_fid(payload, offset)
            new_fid, offset = _take_fid(payload, offset)
            old = self.replica.lookup(old_fid)
            from repro.pbio.format import deserialize_format
            new = deserialize_format(payload[offset:])
            self.replica.register_evolution(old, new)
            self.publisher.resolve_pending(new_fid, ok=True)
        elif kind == Ctl.CUTOVER:
            name, offset = _unpack_name(payload, 0)
            new_fid, _ = _take_fid(payload, offset)
            self.publisher.shard_cutover(name, new_fid)
        elif kind == Ctl.BARRIER:
            (seq,) = _U32.unpack_from(payload)
            ok = self.publisher.server.flush(
                timeout=self.config.block_timeout * 4 + 30.0)
            self.ctl.send(Ctl.ACK,
                          _U32.pack(seq) + bytes((1 if ok else 0,)))
        elif kind == Ctl.STATS_REQ:
            (seq,) = _U32.unpack_from(payload)
            self.ctl.send(Ctl.STATS_RSP,
                          _U32.pack(seq) + self._stats_json())
        elif kind == Ctl.FMT_FAIL:
            fid, _ = _take_fid(payload, 0)
            self.publisher.resolve_pending(fid, ok=False)
        elif kind == Ctl.CONN:
            if fd is not None:
                sock = socket.socket(fileno=fd)
                addr = payload.decode("utf-8", errors="replace")
                self.publisher.server.adopt(sock, addr)
        # unknown kinds are ignored: forward-compatible control plane

    def _stats_json(self) -> bytes:
        from repro import obs
        from repro.pbio.encode import BULK_STATS
        return json.dumps({
            "worker": self.config.label,
            "metrics": obs.snapshot(),
            "publisher": self.publisher.stats_dict(),
            "server": self.publisher.server.totals(),
            "bulk": BULK_STATS.snapshot(),
            "codec": self.context.stats.as_dict(),
            "format_server": self.replica.stats,
        }, sort_keys=True).encode("utf-8")


def _worker_entry(ctl_sock: socket.socket,
                  config: WorkerConfig) -> None:
    """Spawned worker main: build the shard, serve until STOP/EOF."""
    os.environ[WORKER_ENV_MARKER] = str(os.getppid())
    ctl = ControlSocket(ctl_sock)
    try:
        runtime = _WorkerRuntime(ctl, config)
    except Exception as exc:  # bind failure etc: tell the publisher
        try:
            ctl.send(Ctl.STOPPED, repr(exc).encode())
        except OSError:
            pass
        raise
    runtime.run()


# ---------------------------------------------------------------------------
# Publisher process
# ---------------------------------------------------------------------------

class _WorkerHandle:
    """Publisher-side state for one shard worker."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.label = f"w{index}"
        self.process = None
        self.ctl: ControlSocket | None = None
        self.reader: threading.Thread | None = None
        self.started = threading.Event()
        self.stopped = threading.Event()
        self.alive = False
        self.clients = 0
        self.accepted = 0
        self.closed = 0
        #: format ids whose metadata this worker already holds
        self.sent_formats: set[FormatID] = set()
        self.start_error: str | None = None


class ShardedBroadcastServer:
    """An acceptor plus N event-loop worker processes, marshal-once.

    The publisher-facing API mirrors
    :class:`~repro.transport.broadcast.BroadcastPublisher`:
    ``publish`` / ``publish_many`` / ``cutover`` / ``flush`` /
    ``wait_for_subscribers`` / ``close``, plus process-topology extras
    (``worker_stats``, ``metrics_snapshot``, ``mode``).

    *mode* is ``"auto"`` (prefer ``reuseport``, fall back to
    ``fdpass``), or an explicit ``"reuseport"`` / ``"fdpass"``
    override; an explicit ``reuseport`` on a platform that cannot
    balance raises :class:`~repro.errors.TransportError` instead of
    silently degrading.
    """

    def __init__(self, context: IOContext, *,
                 workers: int = 2,
                 mode: str = "auto",
                 host: str = "127.0.0.1", port: int = 0,
                 policy: BackpressurePolicy | str =
                 BackpressurePolicy.BLOCK,
                 max_queue_bytes: int = 4 * 1024 * 1024,
                 block_timeout: float = 5.0,
                 max_frame_len: int = MAX_FRAME,
                 start_timeout: float = 60.0) -> None:
        if workers < 1:
            raise ValueError("need at least one worker")
        if mode not in ("auto", "reuseport", "fdpass"):
            raise ValueError(f"unknown shard mode {mode!r}")
        self.context = context
        self.requested_mode = mode
        self.mode: str | None = None
        self.mode_reason: str | None = None
        self.policy = BackpressurePolicy.coerce(policy)
        self.stats = BroadcastStats()
        self.worker_count = workers
        self.host = host
        self.port = port
        self._config = dict(policy=self.policy.value,
                            max_queue_bytes=max_queue_bytes,
                            block_timeout=block_timeout,
                            max_frame_len=max_frame_len)
        self.block_timeout = block_timeout
        self._start_timeout = start_timeout
        self._workers: list[_WorkerHandle] = []
        self._listener: socket.socket | None = None
        self._acceptor: threading.Thread | None = None
        self._accept_index = 0
        self._lock = threading.Lock()
        self._census = threading.Condition(self._lock)
        self._seq = 0
        self._acks: dict[int, tuple[threading.Event, list]] = {}
        #: name -> {fid: pin count} reported by workers (older
        #: versions some subscriber negotiated down to)
        self._pins: dict[str, dict[FormatID, int]] = {}
        self._version_formats: dict[FormatID, IOFormat] = {}
        self._started = False
        self._closed = False
        self.worker_failures = 0

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "ShardedBroadcastServer":
        if self._started:
            return self
        self._started = True
        self._select_mode()
        self._bind()
        multiprocessing.allow_connection_pickling()
        ctx = multiprocessing.get_context("spawn")
        deadline = time.monotonic() + self._start_timeout
        os.environ[WORKER_ENV_MARKER] = str(os.getpid())
        try:
            for index in range(self.worker_count):
                handle = _WorkerHandle(index)
                parent_sock, child_sock = socket.socketpair()
                set_cloexec(parent_sock)
                handle.ctl = ControlSocket(parent_sock)
                config = WorkerConfig(index=index, mode=self.mode,
                                      host=self.host, port=self.port,
                                      **self._config)
                handle.process = ctx.Process(
                    target=_worker_entry, args=(child_sock, config),
                    name=f"repro-shard-{index}", daemon=True)
                handle.process.start()
                child_sock.close()
                handle.alive = True
                handle.reader = threading.Thread(
                    target=self._reader, args=(handle,),
                    name=f"shard-ctl-{index}", daemon=True)
                handle.reader.start()
                self._workers.append(handle)
        finally:
            os.environ.pop(WORKER_ENV_MARKER, None)
        for handle in self._workers:
            remaining = max(0.0, deadline - time.monotonic())
            if not handle.started.wait(remaining):
                self.close(timeout=5.0)
                raise TransportError(
                    f"shard worker {handle.index} did not start "
                    f"within {self._start_timeout}s")
            if handle.start_error is not None:
                self.close(timeout=5.0)
                raise TransportError(
                    f"shard worker {handle.index} failed to start: "
                    f"{handle.start_error}")
        for handle in self._workers:
            self._seed_worker(handle)
        if self.mode == "reuseport":
            # workers hold the port now; drop the reservation so no
            # connection ever lands in a backlog nobody accepts from
            self._listener.close()
            self._listener = None
        else:
            self._acceptor = threading.Thread(
                target=self._accept_loop, name="shard-acceptor",
                daemon=True)
            self._acceptor.start()
        return self

    def _select_mode(self) -> None:
        if self.requested_mode == "fdpass":
            self.mode, self.mode_reason = "fdpass", "explicit override"
            return
        ok, reason = reuseport_available()
        if self.requested_mode == "reuseport":
            if not ok:
                raise TransportError(
                    f"reuseport mode requested but unavailable: "
                    f"{reason}")
            self.mode, self.mode_reason = "reuseport", reason
            return
        self.mode = "reuseport" if ok else "fdpass"
        self.mode_reason = reason

    def _bind(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        if self.mode == "reuseport":
            listener.setsockopt(socket.SOL_SOCKET,
                                socket.SO_REUSEPORT, 1)
        listener.bind((self.host, self.port))
        listener.listen(1024)
        set_cloexec(listener)
        self.host, self.port = listener.getsockname()
        self._listener = listener

    def close(self, timeout: float = 15.0) -> None:
        """Stop accepting, drain every shard, reap every worker."""
        if self._closed:
            return
        self._closed = True
        deadline = time.monotonic() + timeout
        if self._listener is not None:
            # a plain close() does not wake a thread blocked in
            # accept(); shutdown() does, and the loop's poll timeout
            # covers platforms where even that is a no-op
            try:
                self._listener.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                self._listener.close()
            except OSError:
                pass
            self._listener = None
        if self._acceptor is not None:
            self._acceptor.join(max(0.0, deadline - time.monotonic()))
            self._acceptor = None
        for handle in self._workers:
            if handle.alive and handle.ctl is not None:
                try:
                    handle.ctl.send(Ctl.STOP)
                except OSError:
                    pass
        for handle in self._workers:
            process = handle.process
            if process is None:
                continue
            process.join(max(0.1, deadline - time.monotonic()))
            if process.is_alive():
                process.terminate()
                process.join(2.0)
            if process.is_alive():  # pragma: no cover - last resort
                process.kill()
                process.join(1.0)
            handle.alive = False
            if handle.ctl is not None:
                handle.ctl.close()
        for handle in self._workers:
            if handle.reader is not None:
                handle.reader.join(1.0)

    def __enter__(self) -> "ShardedBroadcastServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    def worker_pids(self) -> list[int]:
        """Live worker process ids (reaping / diagnostics)."""
        return [h.process.pid for h in self._workers
                if h.process is not None and h.process.is_alive()]

    # -- acceptor (fdpass mode) ---------------------------------------------

    def _accept_loop(self) -> None:
        listener = self._listener
        if listener is not None:
            listener.settimeout(1.0)
        while not self._closed and listener is not None:
            try:
                sock, addr = listener.accept()
            except (TimeoutError, socket.timeout):
                continue
            except OSError:
                return  # listener closed: shutting down
            sock.setblocking(True)
            set_cloexec(sock)
            handle = self._next_worker()
            if handle is None:
                sock.close()
                continue
            try:
                handle.ctl.send_fd(
                    Ctl.CONN, f"{addr[0]}:{addr[1]}".encode(),
                    sock.fileno())
            except OSError:
                self._mark_dead(handle)
            finally:
                sock.close()  # the worker holds its own duplicate

    def _next_worker(self) -> _WorkerHandle | None:
        """Round-robin over live workers."""
        for _ in range(len(self._workers)):
            handle = self._workers[
                self._accept_index % len(self._workers)]
            self._accept_index += 1
            if handle.alive:
                return handle
        return None

    # -- control-plane reader (one thread per worker) -----------------------

    def _reader(self, handle: _WorkerHandle) -> None:
        ctl = handle.ctl
        while True:
            try:
                msg = ctl.recv(None)
            except (ProtocolError, OSError):
                msg = None
            if msg is None:
                self._mark_dead(handle)
                return
            kind, payload, _fd = msg
            if kind == Ctl.STARTED:
                handle.started.set()
            elif kind == Ctl.STOPPED:
                if payload:
                    handle.start_error = payload.decode(
                        "utf-8", errors="replace")
                    handle.started.set()
                handle.stopped.set()
                self._mark_dead(handle, expected=True)
                return
            elif kind == Ctl.COUNT:
                clients, accepted, closed = struct.unpack_from(
                    ">III", payload)
                with self._census:
                    handle.clients = clients
                    handle.accepted = accepted
                    handle.closed = closed
                    self._census.notify_all()
            elif kind in (Ctl.ACK, Ctl.STATS_RSP):
                (seq,) = _U32.unpack_from(payload)
                with self._lock:
                    entry = self._acks.get(seq)
                if entry is not None:
                    event, sink = entry
                    sink.append((handle, payload[4:]))
                    event.set()
            elif kind == Ctl.PIN:
                name, offset = _unpack_name(payload, 0)
                fid, _ = _take_fid(payload, offset)
                with self._census:
                    pins = self._pins.setdefault(name, {})
                    pins[fid] = pins.get(fid, 0) + 1
                    self._census.notify_all()
            elif kind == Ctl.UNPIN:
                name, offset = _unpack_name(payload, 0)
                fid, _ = _take_fid(payload, offset)
                with self._lock:
                    pins = self._pins.get(name)
                    if pins and fid in pins:
                        pins[fid] -= 1
                        if pins[fid] <= 0:
                            del pins[fid]
            elif kind == Ctl.FMT_MISS:
                fid, _ = _take_fid(payload, 0)
                self._serve_fmt_miss(handle, fid)

    def _serve_fmt_miss(self, handle: _WorkerHandle,
                        fid: FormatID) -> None:
        try:
            metadata = self.context.format_server.lookup_bytes(fid)
            name = self.context.format_server.lookup(fid).name
        except Exception:
            try:
                handle.ctl.send(Ctl.FMT_FAIL, fid.to_bytes())
            except OSError:
                self._mark_dead(handle)
            return
        self._send_reg(handle, fid, name, metadata)

    def _mark_dead(self, handle: _WorkerHandle,
                   expected: bool = False) -> None:
        with self._census:
            was_alive = handle.alive
            handle.alive = False
            handle.clients = 0
            self._census.notify_all()
        if was_alive and not expected and not self._closed:
            self.worker_failures += 1

    # -- format replication --------------------------------------------------

    def _send_reg(self, handle: _WorkerHandle, fid: FormatID,
                  name: str, metadata: bytes) -> None:
        if fid in handle.sent_formats:
            return
        try:
            handle.ctl.send(Ctl.REG, fid.to_bytes() + _pack_name(name)
                            + metadata)
            handle.sent_formats.add(fid)
        except OSError:
            self._mark_dead(handle)

    def _seed_worker(self, handle: _WorkerHandle) -> None:
        """Replicate every format and lineage the publisher's
        FormatServer already holds, so a subscriber's first FMT_REQ or
        LIN_REQ is answerable from the shard before anything was ever
        published.  Chains replay oldest-first as REG(root) + one
        EVOLVE per link — the same wire the live :meth:`cutover` path
        uses, so replicas cannot diverge from late upgrades."""
        server = self.context.format_server
        seeded_names: set[str] = set()
        for fid in server.known_ids():
            name = server.lookup(fid).name
            if name in seeded_names:
                continue
            seeded_names.add(name)
            chain = server.lineage(name)
            if not chain:
                continue
            self._send_reg(handle, chain[0], name,
                           server.lookup_bytes(chain[0]))
            for old_fid, new_fid in zip(chain, chain[1:]):
                if new_fid in handle.sent_formats:
                    continue
                try:
                    handle.ctl.send(
                        Ctl.EVOLVE,
                        _pack_name(name) + old_fid.to_bytes()
                        + new_fid.to_bytes()
                        + server.lookup_bytes(new_fid))
                    handle.sent_formats.add(new_fid)
                except OSError:
                    self._mark_dead(handle)
                    return
        for fid in server.known_ids():
            if fid not in handle.sent_formats:
                self._send_reg(handle, fid, server.lookup(fid).name,
                               server.lookup_bytes(fid))

    def _replicate(self, fmt: IOFormat) -> None:
        fid = fmt.format_id
        metadata = None
        for handle in self._live():
            if fid in handle.sent_formats:
                continue
            if metadata is None:
                metadata = self.context.format_server.lookup_bytes(fid)
            self._send_reg(handle, fid, fmt.name, metadata)

    def _live(self) -> list[_WorkerHandle]:
        return [h for h in self._workers if h.alive]

    # -- publishing ----------------------------------------------------------

    def publish(self, format_name: str | IOFormat,
                record: dict) -> int:
        """Marshal *record* exactly once, hand the same frame bytes to
        every shard; returns the number of live shards reached."""
        fmt = self._format(format_name)
        self._replicate(fmt)
        encoder = self.context.encoder_for(fmt)
        t0 = sample_t0()
        parts = encoder.encode_wire_parts(record)
        if t0:
            observe_phase("marshal", t0)
        data = frame_bytes(FrameType.DATA, *parts)
        self.context.stats.count_encoded(
            1, sum(len(p) for p in parts))

        def down_convert(old_fmt: IOFormat) -> bytes:
            converted = down_converter(fmt, old_fmt) \
                .encode_record_parts(record)
            return frame_bytes(FrameType.DATA, *converted)

        return self._fan_out(fmt, data, records=1, flags=_F_PRIMARY,
                             down_convert=down_convert)

    def publish_many(self, format_name: str | IOFormat,
                     records) -> int:
        """One shared-header batch, encoded once, to every shard."""
        fmt = self._format(format_name)
        records = list(records)
        if not records:
            return 0
        self._replicate(fmt)
        wire = self.context.encode_many(fmt, records)
        data = frame_bytes(FrameType.DATA_BATCH, wire)

        def down_convert(old_fmt: IOFormat) -> bytes:
            batch = down_converter(fmt, old_fmt).encode_batch(records)
            return frame_bytes(FrameType.DATA_BATCH, batch)

        return self._fan_out(fmt, data, records=len(records),
                             flags=_F_PRIMARY | _F_BATCH,
                             down_convert=down_convert)

    def cutover(self, new_fmt: IOFormat) -> int:
        """Upgrade the stream fleet-wide, zero drops per shard.

        Registers the evolution locally, replicates the grown lineage
        to every worker (EVOLVE), then has each shard re-announce
        (FMT_RSP + LIN_RSP ahead of any new-version data on each
        client's FIFO queue — the same ordering guarantee as the
        single-process cutover, applied per shard)."""
        old_fmt = self.context.lookup_format(new_fmt.name)
        self.context.register_evolution(new_fmt)
        metadata = new_fmt.canonical_bytes()
        payload = (_pack_name(new_fmt.name)
                   + old_fmt.format_id.to_bytes()
                   + new_fmt.format_id.to_bytes() + metadata)
        reached = 0
        for handle in self._live():
            try:
                if old_fmt.format_id not in handle.sent_formats:
                    self._send_reg(
                        handle, old_fmt.format_id, old_fmt.name,
                        self.context.format_server.lookup_bytes(
                            old_fmt.format_id))
                handle.ctl.send(Ctl.EVOLVE, payload)
                handle.sent_formats.add(new_fmt.format_id)
                handle.ctl.send(Ctl.CUTOVER,
                                _pack_name(new_fmt.name)
                                + new_fmt.format_id.to_bytes())
                reached += 1
            except OSError:
                self._mark_dead(handle)
        self.stats.count("cutovers")
        return reached

    def _format(self, format_name: str | IOFormat) -> IOFormat:
        if isinstance(format_name, IOFormat):
            return format_name
        return self.context.lookup_format(format_name)

    def _version_format(self, name: str, fid: FormatID) -> IOFormat:
        fmt = self._version_formats.get(fid)
        if fmt is None:
            try:
                fmt = self.context.version_for(name, fid)
            except Exception:
                fmt = self.context.format_server.lookup(fid)
            self._version_formats[fid] = fmt
        return fmt

    def _fan_out(self, fmt: IOFormat, data: bytes, records: int,
                 flags: int, down_convert) -> int:
        #: (fid, frame, flags) per version — the primary plus one
        #: down-converted variant per *pinned version*, never per
        #: subscriber or per worker
        frames = [(fmt.format_id, data, flags)]
        with self._lock:
            pinned = [fid for fid, count in
                      self._pins.get(fmt.name, {}).items()
                      if count > 0 and fid != fmt.format_id]
        for fid in pinned:
            old_fmt = self._version_format(fmt.name, fid)
            frames.append((fid, down_convert(old_fmt),
                           flags & ~_F_PRIMARY))
            self.stats.count("frames_down_converted")
        t0 = sample_t0()
        name_bytes = _pack_name(fmt.name)
        reached = 0
        for handle in self._live():
            try:
                for fid, frame, fr_flags in frames:
                    if fid not in handle.sent_formats:
                        self._send_reg(
                            handle, fid, fmt.name,
                            self.context.format_server
                            .lookup_bytes(fid))
                    handle.ctl.send(
                        Ctl.BCAST,
                        bytes((fr_flags,)) + fid.to_bytes()
                        + name_bytes + frame)
                reached += 1
            except OSError:
                self._mark_dead(handle)
        if t0:
            observe_phase("transport", t0)
        self.stats.count("messages_broadcast", records)
        self.stats.count("bytes_encoded", len(data) - 5)
        self.stats.count("frames_enqueued", reached)
        self.stats.count("bytes_queued", reached * len(data))
        self.stats.max_update("subscriber_high_water",
                              self.subscriber_count)
        return reached

    # -- synchronization -----------------------------------------------------

    def _round_trip(self, kind: int,
                    timeout: float | None) -> list:
        """Send *kind*+seq to every live worker, gather the replies."""
        with self._lock:
            self._seq += 1
            seq = self._seq
            event = threading.Event()
            sink: list = []
            self._acks[seq] = (event, sink)
        targets = self._live()
        for handle in targets:
            try:
                handle.ctl.send(kind, _U32.pack(seq))
            except OSError:
                self._mark_dead(handle)
        deadline = None if timeout is None else \
            time.monotonic() + timeout
        try:
            while len(sink) < len([h for h in targets if h.alive]):
                remaining = None if deadline is None else \
                    deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    break
                event.wait(remaining)
                event.clear()
        finally:
            with self._lock:
                self._acks.pop(seq, None)
        return sink

    def flush(self, timeout: float | None = 60.0) -> bool:
        """Block until every shard's client queues have drained."""
        replies = self._round_trip(Ctl.BARRIER, timeout)
        live = len(self._live())
        return len(replies) >= live and \
            all(payload[:1] == b"\x01" for _h, payload in replies)

    def worker_stats(self, timeout: float | None = 30.0) \
            -> dict[str, dict]:
        """Per-shard telemetry: obs snapshot, publisher counters,
        event-loop totals, codec/bulk counters, replica stats."""
        replies = self._round_trip(Ctl.STATS_REQ, timeout)
        out = {}
        for handle, payload in replies:
            try:
                out[handle.label] = json.loads(payload)
            except ValueError:
                out[handle.label] = {"error": "unparseable stats"}
        return out

    def metrics_snapshot(self, timeout: float | None = 30.0) -> dict:
        """One combined registry snapshot: every worker's series
        labeled ``worker="wN"`` plus this process's own labeled
        ``worker="publisher"`` — the scrape body for a fleet-wide
        ``/metrics``."""
        from repro import obs
        from repro.obs.merge import merge_snapshots
        snaps = {"publisher": obs.snapshot()}
        for label, stats in self.worker_stats(timeout).items():
            metrics = stats.get("metrics")
            if isinstance(metrics, dict):
                snaps[label] = metrics
        return merge_snapshots(snaps)

    def wait_for_subscribers(self, count: int,
                             timeout: float | None = None) -> bool:
        deadline = None if timeout is None else \
            time.monotonic() + timeout
        with self._census:
            while sum(h.clients for h in self._workers) < count:
                remaining = None if deadline is None else \
                    deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._census.wait(remaining)
            return True

    def wait_for_pins(self, name: str, count: int,
                      timeout: float | None = None) -> bool:
        """Block until *count* subscribers have reported version pins
        for lineage *name*.

        A shard registers a pin locally before reporting it here, so
        once this returns True every one of those subscribers receives
        the down-converted variant starting with the very next
        publish.  Without the barrier a publish can race a subscriber
        whose LIN_RSP is still in flight; that subscriber gets the
        current version for the frames already fanned out."""
        deadline = None if timeout is None else \
            time.monotonic() + timeout
        with self._census:
            while sum(self._pins.get(name, {}).values()) < count:
                remaining = None if deadline is None else \
                    deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._census.wait(remaining)
            return True

    @property
    def subscriber_count(self) -> int:
        with self._lock:
            return sum(h.clients for h in self._workers)

    def stats_dict(self) -> dict:
        out = self.stats.as_dict()
        out["subscribers"] = self.subscriber_count
        out["workers"] = len(self._workers)
        out["workers_alive"] = len(self._live())
        out["worker_failures"] = self.worker_failures
        out["mode"] = self.mode
        return out
