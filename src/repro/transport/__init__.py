"""Message transport with on-demand format negotiation.

PBIO records carry only an 8-byte format ID; when a receiver sees an ID
it cannot resolve it asks the peer for the metadata, imports it into
its local format server, and proceeds — after which every further
record in that format decodes without negotiation.  That is the
"connection establishment" cost the paper describes as the only place
XMIT/PBIO pay overhead ("Small 'startup' overheads are incurred only
during 'connection establishment'").

Layers:

* :mod:`repro.transport.base`       -- framed :class:`Channel` interface;
* :mod:`repro.transport.inproc`     -- queue-backed channel pair;
* :mod:`repro.transport.tcp`        -- socket channel + listener;
* :mod:`repro.transport.messages`   -- frame encoding;
* :mod:`repro.transport.connection` -- :class:`Connection`: records in,
  records out, metadata fetched on demand.
"""

from repro.transport.base import Channel
from repro.transport.inproc import InProcChannel, channel_pair
from repro.transport.tcp import TCPChannel, TCPListener, tcp_pair
from repro.transport.messages import Frame, FrameType
from repro.transport.connection import Connection, ReceivedMessage

__all__ = [
    "Channel",
    "Connection",
    "Frame",
    "FrameType",
    "InProcChannel",
    "ReceivedMessage",
    "TCPChannel",
    "TCPListener",
    "channel_pair",
    "tcp_pair",
]
