"""Message transport with on-demand format negotiation.

PBIO records carry only an 8-byte format ID; when a receiver sees an ID
it cannot resolve it asks the peer for the metadata, imports it into
its local format server, and proceeds — after which every further
record in that format decodes without negotiation.  That is the
"connection establishment" cost the paper describes as the only place
XMIT/PBIO pay overhead ("Small 'startup' overheads are incurred only
during 'connection establishment'").

Layers:

* :mod:`repro.transport.base`       -- framed :class:`Channel` interface;
* :mod:`repro.transport.inproc`     -- queue-backed channel pair;
* :mod:`repro.transport.tcp`        -- socket channel + listener;
* :mod:`repro.transport.messages`   -- frame encoding;
* :mod:`repro.transport.connection` -- :class:`Connection`: records in,
  records out, metadata fetched on demand;
* :mod:`repro.transport.eventloop`  -- one-thread ``selectors`` server
  for many concurrent clients;
* :mod:`repro.transport.broadcast`  -- encode-once fan-out publisher
  with bounded per-client write queues;
* :mod:`repro.transport.sharded`    -- multi-process sharded broadcast:
  one marshaling publisher, N event-loop worker processes.
"""

from repro.transport.base import Channel
from repro.transport.broadcast import (
    BackpressurePolicy, BroadcastPublisher, BroadcastStats,
)
from repro.transport.connection import Connection, ReceivedMessage
from repro.transport.eventloop import (
    ClientHandle, EventLoopServer, Poller,
)
from repro.transport.inproc import InProcChannel, channel_pair
from repro.transport.messages import Frame, FrameType, frame_bytes
from repro.transport.sharded import (
    ShardedBroadcastServer, WorkerConfig, reuseport_available,
)
from repro.transport.tcp import TCPChannel, TCPListener, tcp_pair

__all__ = [
    "BackpressurePolicy",
    "BroadcastPublisher",
    "BroadcastStats",
    "Channel",
    "ClientHandle",
    "Connection",
    "EventLoopServer",
    "Frame",
    "FrameType",
    "InProcChannel",
    "Poller",
    "ReceivedMessage",
    "ShardedBroadcastServer",
    "TCPChannel",
    "TCPListener",
    "WorkerConfig",
    "channel_pair",
    "frame_bytes",
    "reuseport_available",
    "tcp_pair",
]
