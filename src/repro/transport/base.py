"""The channel abstraction.

A :class:`Channel` moves whole frames between exactly two endpoints, in
order, reliably — the service TCP provides and the in-process pair
simulates.  Everything above (connections, components, the Hydrology
pipeline) is written against this interface, so swapping loopback TCP
for in-process queues changes nothing but the constructor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable

from repro.errors import TransportError
from repro.transport.messages import Frame


class Channel(ABC):
    """Reliable, ordered, framed, bidirectional byte transport."""

    @abstractmethod
    def send(self, frame: Frame) -> None:
        """Send one frame; raises :class:`TransportError` when closed."""

    def send_many(self, frames: Iterable[Frame]) -> None:
        """Send several frames back to back.

        The base implementation loops over :meth:`send`; transports
        with per-call costs (TCP's syscall per ``sendall``) override
        it to coalesce the writes.
        """
        for frame in frames:
            self.send(frame)

    def fileno(self) -> int:
        """The OS-level descriptor, for event-loop registration.

        Only socket-backed channels have one; others raise so callers
        fall back to thread-per-channel servicing.
        """
        raise TransportError(
            f"{type(self).__name__} has no pollable descriptor")

    @abstractmethod
    def recv(self, timeout: float | None = None) -> Frame | None:
        """Receive the next frame.

        Returns None on orderly close.  Raises
        :class:`TransportError` on timeout or broken transport.
        """

    @abstractmethod
    def close(self) -> None:
        """Close this endpoint; the peer's recv() returns None."""

    def __enter__(self) -> "Channel":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
