"""Non-blocking event-loop transport server.

One thread, one ``selectors`` poll loop, many clients.  The blocking
transport (:class:`~repro.transport.tcp.TCPListener` plus a thread per
channel) tops out at a few dozen peers; the paper's motivating
deployment — "single servers must provide information to large numbers
of clients" — needs hundreds.  :class:`EventLoopServer` accepts every
subscriber on the same thread, reassembles inbound frames
incrementally (the same length-prefix protocol as
:class:`~repro.transport.tcp.TCPChannel`), and drains per-client write
queues with scatter-gather ``sendmsg`` so a burst of broadcast frames
costs one syscall per client, not one per frame.

The loop itself is policy-free: writes are queued with
:meth:`EventLoopServer.enqueue` and bounded-queue backpressure
(``block`` / ``drop-oldest`` / ``disconnect-slow``) is composed on top
by :class:`~repro.transport.broadcast.BroadcastPublisher`.

A misbehaving client — oversized length prefix, unknown frame type,
reset connection — is closed individually with the error recorded as
its ``close_reason``; the loop and every other client keep running.
"""

from __future__ import annotations

import selectors
import socket
import struct
import threading
import time
from collections import deque
from typing import Iterator

from repro.errors import (
    FrameTooLargeError, ProtocolError, TransportError,
)
from repro.obs import runtime as _obs
from repro.obs.metrics import (
    SENDMSG_BATCH, TRANSPORT_BYTES_OUT, TRANSPORT_EVENTS, TRANSPORT_FRAMES,
)
from repro.obs.registry import REGISTRY
from repro.transport.messages import MAX_FRAME, Frame, decode_frame

try:
    import fcntl as _fcntl
except ImportError:  # pragma: no cover - non-POSIX
    _fcntl = None

_LEN = struct.Struct(">I")
_RECV_CHUNK = 256 * 1024
#: iovec entries per drain sendmsg (conservative vs. kernel IOV_MAX)
_SENDMSG_BATCH = 512


def set_cloexec(sock) -> None:
    """Mark *sock*'s fd close-on-exec (and non-inheritable).

    Every fd an :class:`EventLoopServer` owns — wake socketpair,
    listener, accepted and adopted clients — passes through here, so a
    worker process forked or spawned while a server is live can never
    inherit another shard's sockets.  CPython already creates sockets
    non-inheritable (PEP 446); this is the explicit, regression-tested
    guarantee for fds that arrived from elsewhere (``socket(fileno=)``
    adoptions, fds received over ``SCM_RIGHTS``).
    """
    try:
        sock.set_inheritable(False)
    except (AttributeError, OSError):  # pragma: no cover - defensive
        pass
    if _fcntl is not None:
        try:
            fd = sock.fileno()
            flags = _fcntl.fcntl(fd, _fcntl.F_GETFD)
            _fcntl.fcntl(fd, _fcntl.F_SETFD,
                         flags | _fcntl.FD_CLOEXEC)
        except (OSError, ValueError):  # pragma: no cover - closed fd
            pass


def _count_rejected(reason: str) -> None:
    """One malformed wire input rejected; the offending client is
    closed individually while the loop and its peers keep running."""
    if _obs.enabled:
        from repro.obs.metrics import MALFORMED_FRAMES
        MALFORMED_FRAMES.labels("eventloop", reason).inc()


class Poller:
    """A ``selectors`` selector with a cross-thread wakeup channel.

    ``select()`` blocks the loop thread; producers on other threads
    (the publisher enqueueing frames, ``close()``) call :meth:`wake`
    to interrupt it through a loopback socketpair.
    """

    def __init__(self) -> None:
        self._selector = selectors.DefaultSelector()
        self._wake_r, self._wake_w = socket.socketpair()
        self._wake_r.setblocking(False)
        self._wake_w.setblocking(False)
        set_cloexec(self._wake_r)
        set_cloexec(self._wake_w)
        self._selector.register(self._wake_r, selectors.EVENT_READ,
                                None)

    def register(self, sock, events: int, data) -> None:
        self._selector.register(sock, events, data)

    def modify(self, sock, events: int, data) -> None:
        self._selector.modify(sock, events, data)

    def unregister(self, sock) -> None:
        try:
            self._selector.unregister(sock)
        except (KeyError, ValueError):
            pass

    def wake(self) -> None:
        try:
            self._wake_w.send(b"\x00")
        except OSError:  # full pipe still wakes; closed poller is done
            pass

    def poll(self, timeout: float | None = None) -> list:
        """Ready ``(key, events)`` pairs, wakeups already drained."""
        ready = self._selector.select(timeout)
        out = []
        for key, events in ready:
            if key.fileobj is self._wake_r:
                try:
                    while self._wake_r.recv(4096):
                        pass
                except OSError:
                    pass
                continue
            out.append((key, events))
        return out

    def close(self) -> None:
        self._selector.close()
        self._wake_r.close()
        self._wake_w.close()


class ClientHandle:
    """Per-subscriber state owned by the event loop.

    Handler callbacks and the publisher hold references to these; all
    mutable queue state is guarded by the server's lock.
    """

    __slots__ = (
        "id", "sock", "addr", "read_buffer", "write_queue",
        "head_offset", "in_flight", "queued_bytes",
        "queue_high_water", "sent_bytes", "frames_enqueued",
        "frames_sent", "frames_received", "frames_dropped", "open",
        "closing", "close_reason", "announced", "peer_architecture",
        "negotiated",
    )

    def __init__(self, client_id: int, sock: socket.socket,
                 addr) -> None:
        self.id = client_id
        self.sock = sock
        self.addr = addr
        self.read_buffer = bytearray()
        #: entries are ``[memoryview, droppable]``; the head entry may
        #: be partially sent (``head_offset`` bytes already written)
        self.write_queue: deque = deque()
        self.head_offset = 0
        #: number of head entries snapshotted into an in-progress
        #: sendmsg window; drop_oldest must not remove them
        self.in_flight = 0
        self.queued_bytes = 0
        self.queue_high_water = 0
        self.sent_bytes = 0
        self.frames_enqueued = 0
        self.frames_sent = 0
        self.frames_received = 0
        self.frames_dropped = 0
        self.open = True
        self.closing = False          # graceful: FIN after drain
        self.close_reason: BaseException | None = None
        #: format IDs already announced to this client (publisher's)
        self.announced: set = set()
        self.peer_architecture: str | None = None
        #: format name -> FormatID this client negotiated via LIN_REQ
        #: (written on the loop thread, read by the publisher; GIL-
        #: atomic dict assignment)
        self.negotiated: dict = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<ClientHandle #{self.id} {self.addr} "
                f"queued={self.queued_bytes}>")


class EventLoopServer:
    """Accepts and services many framed-protocol clients on one thread.

    *handler* receives the loop's callbacks, all invoked on the loop
    thread with no internal lock held:

    * ``on_connect(client)``
    * ``on_frame(client, frame)``
    * ``on_disconnect(client, reason)`` — *reason* is None for an
      orderly close, else the exception that ended the client.

    Callbacks are optional (missing attributes are skipped), so a
    plain object with the methods it cares about suffices.
    """

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 handler=None,
                 max_frame_len: int = MAX_FRAME,
                 listener_socket: socket.socket | None = None,
                 listen: bool = True) -> None:
        self.handler = handler
        self.max_frame_len = max_frame_len
        if listener_socket is not None:
            # caller-provided listener (e.g. a worker's SO_REUSEPORT
            # socket bound to a port shared across shard processes)
            self._listener = listener_socket
            self._listener.setblocking(False)
            self.host, self.port = \
                self._listener.getsockname()[:2]
        elif listen:
            self._listener = socket.socket(socket.AF_INET,
                                           socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET,
                                      socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            self._listener.listen(256)
            self._listener.setblocking(False)
            self.host, self.port = self._listener.getsockname()
        else:
            # accept-less loop: clients arrive via adopt() (fd passing
            # from an acceptor process)
            self._listener = None
            self.host, self.port = host, 0
        if self._listener is not None:
            set_cloexec(self._listener)
        self._poller = Poller()
        if self._listener is not None:
            self._poller.register(self._listener, selectors.EVENT_READ,
                                  "accept")
        self._lock = threading.Lock()
        self._changed = threading.Condition(self._lock)
        self._clients: dict[int, ClientHandle] = {}
        self._next_id = 0
        self._want_write: set[int] = set()
        self._close_requests: deque = deque()
        self._adoptions: deque = deque()
        self._running = False
        self._thread: threading.Thread | None = None
        self._torn_down = False
        self.clients_accepted = 0
        self.clients_closed = 0
        #: per-client counters carried over when a client closes, so
        #: totals() and the obs collector never lose history
        self._closed_totals = {"frames_enqueued": 0, "frames_sent": 0,
                               "frames_received": 0,
                               "frames_dropped": 0, "sent_bytes": 0}
        self._closed_queue_high_water = 0
        self._obs_retired = False
        # sampled at snapshot time only; held weakly, so a dropped
        # server unregisters itself
        REGISTRY.register_collector(self._obs_collect)

    # -- lifecycle ----------------------------------------------------------

    def start(self) -> "EventLoopServer":
        if self._thread is not None:
            return self
        self._running = True
        self._thread = threading.Thread(target=self._run,
                                        name="event-loop-server",
                                        daemon=True)
        self._thread.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        if not self._running and self._thread is None:
            self._teardown()
            return
        self._running = False
        self._poller.wake()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def __enter__(self) -> "EventLoopServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- cross-thread API ---------------------------------------------------

    def clients(self) -> list[ClientHandle]:
        """Snapshot of currently open clients."""
        with self._lock:
            return [c for c in self._clients.values() if c.open]

    @property
    def client_count(self) -> int:
        with self._lock:
            return len(self._clients)

    def live_fds(self) -> list[int]:
        """Every fd this server currently owns: wake socketpair,
        listener (when it has one), and all open client sockets.  All
        of them are FD_CLOEXEC (see :func:`set_cloexec`), so spawned
        shard workers never inherit another shard's sockets."""
        fds = [self._poller._wake_r.fileno(),
               self._poller._wake_w.fileno()]
        if self._listener is not None:
            fds.append(self._listener.fileno())
        with self._lock:
            fds.extend(c.sock.fileno() for c in self._clients.values()
                       if c.open)
        return [fd for fd in fds if fd >= 0]

    def totals(self) -> dict:
        """Lifetime transport totals: live clients plus everything
        closed clients accumulated before they went away."""
        with self._lock:
            totals = dict(self._closed_totals)
            queued = high = 0
            for c in self._clients.values():
                for name in self._closed_totals:
                    totals[name] += getattr(c, name)
                queued += c.queued_bytes
                if c.queue_high_water > high:
                    high = c.queue_high_water
            totals["clients"] = len(self._clients)
            totals["queued_bytes"] = queued
            totals["queue_high_water"] = max(
                high, self._closed_queue_high_water)
            totals["clients_accepted"] = self.clients_accepted
            totals["clients_closed"] = self.clients_closed
        return totals

    def _obs_collect(self) -> list[dict]:
        """Snapshot-time samples for the process-wide registry (the
        merge sums same-named samples over live servers)."""
        if self._obs_retired:
            return []
        t = self.totals()
        gauges = (("repro_transport_clients", t["clients"]),
                  ("repro_transport_queued_bytes", t["queued_bytes"]),
                  ("repro_transport_queue_high_water_bytes",
                   t["queue_high_water"]))
        samples = [{"name": name, "type": "gauge", "help": "",
                    "labels": {}, "value": value}
                   for name, value in gauges]
        frames = (("in", t["frames_received"]),
                  ("out", t["frames_sent"]))
        samples.extend(
            {"name": "repro_transport_frames_total", "type": "counter",
             "help": "Frames through event-loop servers",
             "labels": {"direction": direction}, "value": value}
            for direction, value in frames)
        samples.append(
            {"name": "repro_transport_bytes_out_total",
             "type": "counter",
             "help": "Bytes written to event-loop clients",
             "labels": {}, "value": t["sent_bytes"]})
        events = ("clients_accepted", "clients_closed",
                  "frames_enqueued", "frames_dropped")
        samples.extend(
            {"name": "repro_transport_events_total", "type": "counter",
             "help": "Event-loop server lifecycle totals",
             "labels": {"event": event}, "value": t[event]}
            for event in events)
        return samples

    def _obs_retire(self) -> None:
        """Fold final counter totals into the persistent process-wide
        counters.  The collector above only reports while the server
        object is alive; without this fold a scrape taken after the
        server is closed and collected would show its frame/byte
        history silently vanishing."""
        with self._lock:
            if self._obs_retired:
                return
        t = self.totals()
        with self._lock:
            if self._obs_retired:
                return
            self._obs_retired = True
        TRANSPORT_FRAMES.labels("in").inc(t["frames_received"])
        TRANSPORT_FRAMES.labels("out").inc(t["frames_sent"])
        TRANSPORT_BYTES_OUT.inc(t["sent_bytes"])
        for event in ("clients_accepted", "clients_closed",
                      "frames_enqueued", "frames_dropped"):
            TRANSPORT_EVENTS.labels(event).inc(t[event])

    def enqueue(self, client: ClientHandle, data: bytes, *,
                droppable: bool = True) -> bool:
        """Queue *data* (one whole encoded frame) for *client*.

        Returns False when the client is already gone.  Unbounded:
        callers that need backpressure check ``queued_bytes`` first
        (see :class:`~repro.transport.broadcast.BroadcastPublisher`).
        """
        with self._lock:
            if not client.open or client.closing:
                return False
            client.write_queue.append([memoryview(data), droppable])
            client.queued_bytes += len(data)
            client.frames_enqueued += 1
            if client.queued_bytes > client.queue_high_water:
                client.queue_high_water = client.queued_bytes
            self._want_write.add(client.id)
        self._poller.wake()
        return True

    def drop_oldest(self, client: ClientHandle,
                    need: int) -> tuple[int, int]:
        """Free at least *need* queued bytes by discarding the oldest
        droppable frames (never the partially-sent head, never frames
        inside an in-progress ``sendmsg`` window, never control
        frames).  Returns ``(bytes freed, frames dropped)``."""
        freed = dropped = 0
        with self._changed:
            queue = client.write_queue
            # the loop thread snapshots the first ``in_flight``
            # entries under this lock, then sends and accounts for
            # them outside it; deleting any of them here would make
            # the post-send accounting walk a different queue and
            # desynchronize the client's byte stream
            index = max(client.in_flight,
                        1 if client.head_offset else 0)
            while freed < need and index < len(queue):
                view, droppable = queue[index]
                if droppable:
                    del queue[index]
                    freed += len(view)
                    dropped += 1
                    client.queued_bytes -= len(view)
                    client.frames_dropped += 1
                else:
                    index += 1
            if freed:
                self._changed.notify_all()
        return freed, dropped

    def adopt(self, sock: socket.socket, addr=None) -> bool:
        """Hand an already-connected socket to the loop.

        The socket is registered and announced through ``on_connect``
        exactly as if the loop's own listener had accepted it — the
        ingestion path for sharded topologies where a separate
        acceptor process distributes connections over ``SCM_RIGHTS``.
        Returns False (and closes *sock*) when the server is already
        torn down.
        """
        if addr is None:
            try:
                addr = sock.getpeername()
            except OSError:
                addr = ("?", 0)
        with self._lock:
            if self._torn_down:
                try:
                    sock.close()
                except OSError:
                    pass
                return False
            self._adoptions.append((sock, addr))
        self._poller.wake()
        return True

    def request_close(self, client: ClientHandle,
                      reason: BaseException | None = None, *,
                      graceful: bool = False) -> None:
        """Ask the loop thread to close *client*.

        ``graceful`` drains the write queue, half-closes (FIN) and
        waits for the peer's EOF; otherwise the socket closes as soon
        as the loop services the request.
        """
        with self._lock:
            if not client.open:
                return
            self._close_requests.append((client, reason, graceful))
        self._poller.wake()

    def wait_queue_below(self, client: ClientHandle, limit: int,
                         timeout: float | None) -> bool:
        """Block until *client*'s queued bytes fall to *limit* or the
        client closes; False on timeout (the ``block`` policy wait)."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._changed:
            while client.open and client.queued_bytes > limit:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._changed.wait(remaining)
            return True

    def flush(self, timeout: float | None = None) -> bool:
        """Block until every open client's write queue is empty;
        False on timeout."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._changed:
            while any(c.queued_bytes for c in self._clients.values()
                      if c.open):
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._changed.wait(remaining)
            return True

    def wait_for_clients(self, count: int,
                         timeout: float | None = None) -> bool:
        """Block until at least *count* clients are connected."""
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        with self._changed:
            while len(self._clients) < count:
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return False
                self._changed.wait(remaining)
            return True

    # -- loop ---------------------------------------------------------------

    def _run(self) -> None:
        try:
            while self._running:
                self._apply_requests()
                for key, events in self._poller.poll(1.0):
                    if key.data == "accept":
                        self._accept_ready()
                        continue
                    client = key.data
                    if events & selectors.EVENT_READ:
                        self._readable(client)
                    if client.open and events & selectors.EVENT_WRITE:
                        self._writable(client)
        finally:
            self._teardown()

    def _apply_requests(self) -> None:
        """Apply cross-thread state changes on the loop thread (the
        selector is single-threaded by design)."""
        with self._lock:
            closes = list(self._close_requests)
            self._close_requests.clear()
            adoptions = list(self._adoptions)
            self._adoptions.clear()
            wants = [self._clients.get(cid)
                     for cid in self._want_write]
            self._want_write.clear()
        for sock, addr in adoptions:
            self._register_client(sock, addr)
        for client, reason, graceful in closes:
            if not client.open:
                continue
            if not graceful:
                self._close_client(client, reason)
            elif client.queued_bytes:
                client.close_reason = reason
                client.closing = True  # FIN once the queue drains
            else:
                client.close_reason = reason
                self._finish_graceful(client)
        for client in wants:
            if client is not None and client.open:
                self._set_interest(client, write=True)

    def _set_interest(self, client: ClientHandle, *,
                      write: bool) -> None:
        events = selectors.EVENT_READ
        if write:
            events |= selectors.EVENT_WRITE
        try:
            self._poller.modify(client.sock, events, client)
        except (KeyError, ValueError, OSError):
            pass

    def _accept_ready(self) -> None:
        while True:
            try:
                sock, addr = self._listener.accept()
            except (BlockingIOError, OSError):
                return
            self._register_client(sock, addr)

    def _register_client(self, sock: socket.socket, addr) -> None:
        """Install one connected socket (accepted or adopted) as a
        client of this loop (loop thread only)."""
        sock.setblocking(False)
        set_cloexec(sock)
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # not TCP (unix socketpair in tests, adopted pipes)
        with self._changed:
            client = ClientHandle(self._next_id, sock, addr)
            self._next_id += 1
            self._clients[client.id] = client
            self.clients_accepted += 1
            self._changed.notify_all()
        self._poller.register(sock, selectors.EVENT_READ, client)
        self._callback("on_connect", client)

    def _readable(self, client: ClientHandle) -> None:
        buf = client.read_buffer
        try:
            while True:
                chunk = client.sock.recv(_RECV_CHUNK)
                if not chunk:
                    if client.closing:
                        self._close_client(client, client.close_reason)
                    else:
                        self._close_client(client, None)
                    return
                buf.extend(chunk)
                if len(chunk) < _RECV_CHUNK:
                    break
        except BlockingIOError:
            pass
        except OSError as exc:
            self._close_client(client,
                               TransportError(f"recv failed: {exc}"))
            return
        while len(buf) >= 4:
            (length,) = _LEN.unpack_from(buf)
            if length == 0 or length > self.max_frame_len:
                _count_rejected("oversized_frame" if length
                                else "zero_length_frame")
                reason = (FrameTooLargeError(length, self.max_frame_len)
                          if length else
                          ProtocolError("zero-length frame"))
                self._close_client(client, reason)
                return
            if len(buf) < 4 + length:
                break
            try:
                frame = decode_frame(bytes(buf[4:4 + length]))
            except ProtocolError as exc:
                _count_rejected("bad_frame")
                self._close_client(client, exc)
                return
            del buf[:4 + length]
            client.frames_received += 1
            self._callback("on_frame", client, frame)
            if not client.open:
                return

    def _writable(self, client: ClientHandle) -> None:
        with self._lock:
            queue = client.write_queue
            window = []
            for entry in queue:
                view = entry[0]
                if not window and client.head_offset:
                    view = view[client.head_offset:]
                window.append(view)
                if len(window) >= _SENDMSG_BATCH:
                    break
            # published under the lock so drop_oldest (publisher
            # thread) leaves these entries alone while sendmsg and
            # the accounting below run
            client.in_flight = len(window)
        if not window:
            self._drained(client)
            return
        try:
            if hasattr(client.sock, "sendmsg"):
                sent = client.sock.sendmsg(window)
            else:  # pragma: no cover - non-POSIX fallback
                sent = client.sock.send(window[0])
        except (BlockingIOError, InterruptedError):
            with self._lock:
                client.in_flight = 0
            return
        except OSError as exc:
            with self._lock:
                client.in_flight = 0
            self._close_client(client,
                               TransportError(f"send failed: {exc}"))
            return
        if _obs.enabled:
            SENDMSG_BATCH.observe(len(window))
        with self._changed:
            client.in_flight = 0
            client.sent_bytes += sent
            client.queued_bytes -= sent
            remaining = sent
            queue = client.write_queue
            while remaining and queue:
                view, _droppable = queue[0]
                left = len(view) - client.head_offset
                if remaining >= left:
                    remaining -= left
                    client.head_offset = 0
                    client.frames_sent += 1
                    queue.popleft()
                else:
                    client.head_offset += remaining
                    remaining = 0
            empty = not queue
            self._changed.notify_all()
        if empty:
            self._drained(client)

    def _drained(self, client: ClientHandle) -> None:
        if client.closing:
            self._finish_graceful(client)
        else:
            self._set_interest(client, write=False)

    def _finish_graceful(self, client: ClientHandle) -> None:
        """Queue is empty: half-close and wait for the peer's EOF so
        in-flight frames are never destroyed by a RST."""
        client.closing = True
        self._set_interest(client, write=False)
        try:
            client.sock.shutdown(socket.SHUT_WR)
        except OSError:
            self._close_client(client, client.close_reason)

    def _close_client(self, client: ClientHandle,
                      reason: BaseException | None) -> None:
        with self._changed:
            if not client.open:
                return
            client.open = False
            client.close_reason = reason
            client.write_queue.clear()
            client.queued_bytes = 0
            client.in_flight = 0
            self._clients.pop(client.id, None)
            self.clients_closed += 1
            totals = self._closed_totals
            for name in totals:
                totals[name] += getattr(client, name)
            if client.queue_high_water > self._closed_queue_high_water:
                self._closed_queue_high_water = client.queue_high_water
            self._changed.notify_all()
        self._poller.unregister(client.sock)
        try:
            client.sock.close()
        except OSError:
            pass
        self._callback("on_disconnect", client, reason)

    def _callback(self, name: str, *args) -> None:
        fn = getattr(self.handler, name, None)
        if fn is None:
            return
        try:
            fn(*args)
        except Exception as exc:  # noqa: BLE001 - one client, not loop
            client = args[0]
            if client.open:
                self._close_client(client, exc)

    def _teardown(self) -> None:
        if self._torn_down:
            return
        self._torn_down = True
        for client in list(self._clients.values()):
            self._close_client(client, None)
        with self._lock:
            orphans = list(self._adoptions)
            self._adoptions.clear()
        for sock, _addr in orphans:
            try:
                sock.close()
            except OSError:
                pass
        if self._listener is not None:
            self._poller.unregister(self._listener)
            try:
                self._listener.close()
            except OSError:
                pass
        self._poller.close()
        with self._changed:
            self._changed.notify_all()
        self._obs_retire()


def iter_frames(buffer: bytearray,
                max_frame_len: int = MAX_FRAME) -> Iterator[Frame]:
    """Yield complete frames from *buffer*, consuming them in place.

    Shared incremental parser for callers that manage their own
    sockets (benchmark drainers, tests)."""
    while len(buffer) >= 4:
        (length,) = _LEN.unpack_from(buffer)
        if length == 0 or length > max_frame_len:
            raise FrameTooLargeError(length, max_frame_len) if length \
                else ProtocolError("zero-length frame")
        if len(buffer) < 4 + length:
            return
        frame = decode_frame(bytes(buffer[4:4 + length]))
        del buffer[:4 + length]
        yield frame
