"""Frame encoding for the transport protocol.

Every frame is ``u32 length (big-endian) | u8 type | payload``; the
length covers type byte plus payload.  Frame types:

==========  =====================================================
DATA        a PBIO wire record (header + body)
FMT_REQ     payload = 8-byte format ID the sender cannot resolve
FMT_RSP     payload = 8-byte format ID + canonical format metadata
HELLO       connection greeting (payload = architecture name)
BYE         orderly shutdown
DATA_BATCH  a PBIO record batch: one header shared by N bodies
            (:func:`repro.pbio.encode.build_batch`)
STATS_REQ   ask the peer for its telemetry snapshot (empty payload)
STATS_RSP   payload = UTF-8 JSON telemetry snapshot
==========  =====================================================
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import ProtocolError

_LEN = struct.Struct(">I")
MAX_FRAME = 256 * 1024 * 1024  # defensive cap


class FrameType(enum.IntEnum):
    DATA = 1
    FMT_REQ = 2
    FMT_RSP = 3
    HELLO = 4
    BYE = 5
    # format-server service protocol (repro.pbio.remote_server)
    FMT_REG = 6   # payload = canonical metadata to register
    FMT_ACK = 7   # payload = 8-byte assigned format ID
    FMT_ERR = 8   # payload = UTF-8 error message
    DATA_BATCH = 9  # payload = shared-header record batch
    # live telemetry (repro.obs): snapshot over the data channel
    STATS_REQ = 10  # empty payload: request a telemetry snapshot
    STATS_RSP = 11  # payload = UTF-8 JSON snapshot + publisher stats


@dataclass(frozen=True)
class Frame:
    """One decoded transport frame."""

    type: FrameType
    payload: bytes

    def encode(self) -> bytes:
        return frame_bytes(self.type, self.payload)


def frame_bytes(ftype: int, *parts: bytes) -> bytes:
    """Assemble one wire frame from payload *parts* in a single join.

    The broadcast fan-out path encodes a record as (header, body)
    parts and frames them here without first concatenating a payload —
    one copy for the whole frame instead of one per layer.
    """
    total = sum(len(p) for p in parts)
    return b"".join((_LEN.pack(total + 1), bytes((ftype,))) + parts)


def decode_frame(data: bytes) -> Frame:
    """Decode one framed message (length prefix already stripped)."""
    if not data:
        raise ProtocolError("empty frame")
    try:
        ftype = FrameType(data[0])
    except ValueError:
        raise ProtocolError(f"unknown frame type {data[0]}") from None
    return Frame(type=ftype, payload=bytes(data[1:]))


def read_frame_from(read_exactly) -> Frame | None:
    """Read one frame using *read_exactly(n) -> bytes | None*.

    Returns None on orderly end-of-stream before any bytes arrive.
    """
    head = read_exactly(4)
    if head is None:
        return None
    (length,) = _LEN.unpack(head)
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(f"bad frame length {length}")
    body = read_exactly(length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_frame(body)
