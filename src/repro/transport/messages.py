"""Frame encoding for the transport protocol.

Every frame is ``u32 length (big-endian) | u8 type | payload``; the
length covers type byte plus payload.  Frame types:

==========  =====================================================
DATA        a PBIO wire record (header + body)
FMT_REQ     payload = 8-byte format ID the sender cannot resolve
FMT_RSP     payload = 8-byte format ID + canonical format metadata
HELLO       connection greeting (payload = architecture name)
BYE         orderly shutdown
DATA_BATCH  a PBIO record batch: one header shared by N bodies
            (:func:`repro.pbio.encode.build_batch`)
STATS_REQ   ask the peer for its telemetry snapshot (empty payload)
STATS_RSP   payload = UTF-8 JSON telemetry snapshot
LIN_REQ     lineage handshake: the digests the sender can decode
LIN_RSP     lineage handshake reply: the negotiated digest + chain
==========  =====================================================

The lineage handshake (``docs/EVOLUTION.md``) rides on two frames:

``LIN_REQ``  ``u8 name_len | name utf-8 | u8 n (>=1) | n x 8B digests``
             — "for format *name*, here are the versions I hold
             native bindings for, oldest first".
``LIN_RSP``  ``u8 name_len | name utf-8 | u8 ok | 8B chosen |
             u8 m | m x 8B chain`` — ``ok=1``: *chosen* is the newest
             mutually-decodable digest (and appears in *chain*, the
             responder's full lineage oldest-first); ``ok=0``: no
             common version, *chosen* is eight zero bytes.

Both payloads are bounds-checked on decode; anything malformed raises
:class:`~repro.errors.ProtocolError` (never a crash), matching the
untrusted-wire posture of the rest of the protocol.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass

from repro.errors import ProtocolError
from repro.pbio.format import FormatID

_LEN = struct.Struct(">I")
MAX_FRAME = 256 * 1024 * 1024  # defensive cap

_DIGEST_LEN = 8
_NULL_DIGEST = b"\x00" * _DIGEST_LEN
#: u8 count fields bound both the offered-version list and the chain
MAX_LINEAGE_DIGESTS = 255


class FrameType(enum.IntEnum):
    DATA = 1
    FMT_REQ = 2
    FMT_RSP = 3
    HELLO = 4
    BYE = 5
    # format-server service protocol (repro.pbio.remote_server)
    FMT_REG = 6   # payload = canonical metadata to register
    FMT_ACK = 7   # payload = 8-byte assigned format ID
    FMT_ERR = 8   # payload = UTF-8 error message
    DATA_BATCH = 9  # payload = shared-header record batch
    # live telemetry (repro.obs): snapshot over the data channel
    STATS_REQ = 10  # empty payload: request a telemetry snapshot
    STATS_RSP = 11  # payload = UTF-8 JSON snapshot + publisher stats
    # lineage-aware version negotiation (repro.pbio.lineage)
    LIN_REQ = 12  # payload = name + digests the sender can decode
    LIN_RSP = 13  # payload = name + negotiated digest + full chain


@dataclass(frozen=True)
class Frame:
    """One decoded transport frame."""

    type: FrameType
    payload: bytes

    def encode(self) -> bytes:
        return frame_bytes(self.type, self.payload)


def frame_bytes(ftype: int, *parts: bytes) -> bytes:
    """Assemble one wire frame from payload *parts* in a single join.

    The broadcast fan-out path encodes a record as (header, body)
    parts and frames them here without first concatenating a payload —
    one copy for the whole frame instead of one per layer.
    """
    total = sum(len(p) for p in parts)
    return b"".join((_LEN.pack(total + 1), bytes((ftype,))) + parts)


def decode_frame(data: bytes) -> Frame:
    """Decode one framed message (length prefix already stripped)."""
    if not data:
        raise ProtocolError("empty frame")
    try:
        ftype = FrameType(data[0])
    except ValueError:
        raise ProtocolError(f"unknown frame type {data[0]}") from None
    return Frame(type=ftype, payload=bytes(data[1:]))


def read_frame_from(read_exactly) -> Frame | None:
    """Read one frame using *read_exactly(n) -> bytes | None*.

    Returns None on orderly end-of-stream before any bytes arrive.
    """
    head = read_exactly(4)
    if head is None:
        return None
    (length,) = _LEN.unpack(head)
    if length == 0 or length > MAX_FRAME:
        raise ProtocolError(f"bad frame length {length}")
    body = read_exactly(length)
    if body is None:
        raise ProtocolError("connection closed mid-frame")
    return decode_frame(body)


# -- lineage handshake payloads ---------------------------------------------

def _encode_name(name: str) -> bytes:
    encoded = name.encode("utf-8")
    if not encoded:
        raise ProtocolError("lineage handshake needs a format name")
    if len(encoded) > 255:
        raise ProtocolError(
            f"format name too long for handshake ({len(encoded)} bytes)")
    return bytes((len(encoded),)) + encoded


def _encode_digests(digests: tuple[FormatID, ...],
                    what: str) -> bytes:
    if len(digests) > MAX_LINEAGE_DIGESTS:
        raise ProtocolError(
            f"too many {what} digests ({len(digests)} > "
            f"{MAX_LINEAGE_DIGESTS})")
    return bytes((len(digests),)) + b"".join(
        fid.to_bytes() for fid in digests)


class _PayloadReader:
    """Cursor over an untrusted payload; every read is bounds-checked."""

    def __init__(self, payload: bytes, what: str) -> None:
        self._data = bytes(payload)
        self._pos = 0
        self._what = what

    def take(self, n: int, field: str) -> bytes:
        end = self._pos + n
        if end > len(self._data):
            raise ProtocolError(
                f"{self._what}: truncated at {field} "
                f"(need {n} bytes, have {len(self._data) - self._pos})")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def u8(self, field: str) -> int:
        return self.take(1, field)[0]

    def name(self) -> str:
        length = self.u8("name length")
        if length == 0:
            raise ProtocolError(f"{self._what}: empty format name")
        raw = self.take(length, "format name")
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError(
                f"{self._what}: format name is not valid UTF-8"
            ) from None

    def digests(self, field: str) -> tuple[FormatID, ...]:
        count = self.u8(f"{field} count")
        return tuple(
            FormatID.from_bytes(self.take(_DIGEST_LEN, field))
            for _ in range(count))

    def done(self) -> None:
        if self._pos != len(self._data):
            raise ProtocolError(
                f"{self._what}: {len(self._data) - self._pos} "
                f"trailing bytes after payload")


def encode_lineage_req(name: str, digests) -> bytes:
    """LIN_REQ payload: the versions of *name* the sender can decode
    natively, oldest first.  At least one digest is required."""
    digests = tuple(digests)
    if not digests:
        raise ProtocolError(
            "lineage request must offer at least one digest")
    return _encode_name(name) + _encode_digests(digests, "offered")


def decode_lineage_req(payload: bytes) -> tuple[str,
                                                tuple[FormatID, ...]]:
    """``(name, offered digests)`` from a LIN_REQ payload."""
    reader = _PayloadReader(payload, "lineage request")
    name = reader.name()
    offered = reader.digests("offered digest")
    if not offered:
        raise ProtocolError(
            "lineage request: no offered digests")
    reader.done()
    return name, offered


def encode_lineage_rsp(name: str, chosen: FormatID | None,
                       chain=()) -> bytes:
    """LIN_RSP payload.  *chosen* None means no common version (the
    ``ok=0`` form); otherwise *chosen* must appear in *chain* when a
    chain is sent."""
    chain = tuple(chain)
    if chosen is None:
        body = b"\x00" + _NULL_DIGEST
    else:
        if chain and chosen not in chain:
            raise ProtocolError(
                f"negotiated digest {chosen} is not in the "
                f"advertised chain")
        body = b"\x01" + chosen.to_bytes()
    return _encode_name(name) + body + _encode_digests(chain, "chain")


def decode_lineage_rsp(payload: bytes) \
        -> tuple[str, FormatID | None, tuple[FormatID, ...]]:
    """``(name, chosen or None, chain)`` from a LIN_RSP payload."""
    reader = _PayloadReader(payload, "lineage response")
    name = reader.name()
    ok = reader.u8("ok flag")
    if ok not in (0, 1):
        raise ProtocolError(
            f"lineage response: bad ok flag {ok}")
    raw_chosen = reader.take(_DIGEST_LEN, "chosen digest")
    chain = reader.digests("chain digest")
    reader.done()
    if ok == 0:
        if raw_chosen != _NULL_DIGEST:
            raise ProtocolError(
                "lineage response: ok=0 but chosen digest not zeroed")
        return name, None, chain
    chosen = FormatID.from_bytes(raw_chosen)
    if chain and chosen not in chain:
        raise ProtocolError(
            f"lineage response: chosen digest {chosen} missing "
            f"from advertised chain")
    return name, chosen, chain
