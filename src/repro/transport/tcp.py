"""TCP channel: frames over a loopback (or LAN) socket.

:class:`TCPListener` accepts connections and wraps them; ``tcp_pair``
builds a connected loopback pair in one call for tests and benches.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

from repro.errors import FrameTooLargeError, TransportError
from repro.transport.base import Channel
from repro.transport.messages import MAX_FRAME, Frame, decode_frame

_LEN = struct.Struct(">I")
_RECV_CHUNK = 64 * 1024
#: iovec entries per sendmsg call (conservative vs. the kernel's
#: IOV_MAX of 1024) and the join size the fallback path buffers at
#: once — bounds peak memory to one chunk, not the whole batch.
_SENDMSG_BATCH = 512
_FALLBACK_CHUNK = 1 * 1024 * 1024


class TCPChannel(Channel):
    """A channel over a connected TCP socket.

    Receives through a persistent reassembly buffer so a timed-out
    ``recv`` never discards partially arrived frame bytes — essential
    for callers that poll with short timeouts (control channels), where
    dropping a partial frame would desynchronize the stream.

    Sends hold a lock: two threads sharing one channel would otherwise
    interleave partial ``sendall`` writes and corrupt the frame stream.

    ``max_frame_len`` caps the length prefix :meth:`recv` accepts
    (default :data:`~repro.transport.messages.MAX_FRAME`); an
    oversized prefix raises :class:`FrameTooLargeError` so servers can
    drop one bad client without tearing down their loop.
    """

    def __init__(self, sock: socket.socket, *,
                 max_frame_len: int = MAX_FRAME) -> None:
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False
        self._buffer = bytearray()
        self._send_lock = threading.Lock()
        self.max_frame_len = max_frame_len
        self.bytes_sent = 0
        self.frames_sent = 0

    @classmethod
    def connect(cls, host: str, port: int, *,
                timeout: float = 10.0,
                max_frame_len: int = MAX_FRAME) -> "TCPChannel":
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {host}:{port}: {exc}") from None
        sock.settimeout(None)
        return cls(sock, max_frame_len=max_frame_len)

    def fileno(self) -> int:
        return self._sock.fileno()

    def send(self, frame: Frame) -> None:
        if self._closed:
            raise TransportError("send on closed channel")
        data = frame.encode()
        with self._send_lock:
            try:
                self._sock.sendall(data)
            except OSError as exc:
                raise TransportError(f"send failed: {exc}") from None
            self.bytes_sent += len(data)
            self.frames_sent += 1

    def send_many(self, frames) -> None:
        """Send several frames with scatter-gather ``sendmsg`` (one
        syscall per :data:`_SENDMSG_BATCH` frames, no payload copy).
        Where ``sendmsg`` is unavailable the frames are joined and
        shipped in bounded chunks, so peak memory stays one chunk —
        not a second copy of the whole batch."""
        if self._closed:
            raise TransportError("send on closed channel")
        buffers = [frame.encode() for frame in frames]
        if not buffers:
            return
        total = sum(len(b) for b in buffers)
        with self._send_lock:
            try:
                if hasattr(self._sock, "sendmsg"):
                    self._sendmsg_all(buffers)
                else:  # pragma: no cover - non-POSIX fallback
                    self._sendall_chunked(buffers)
            except OSError as exc:
                raise TransportError(f"send failed: {exc}") from None
            self.bytes_sent += total
            self.frames_sent += len(buffers)

    def _sendmsg_all(self, buffers: list[bytes]) -> None:
        """Drain *buffers* through sendmsg, advancing past partial
        writes without re-copying."""
        pending = [memoryview(b) for b in buffers]
        start = 0
        while start < len(pending):
            window = pending[start:start + _SENDMSG_BATCH]
            sent = self._sock.sendmsg(window)
            for view in window:
                if sent >= len(view):
                    sent -= len(view)
                    start += 1
                else:
                    pending[start] = view[sent:]
                    break

    def _sendall_chunked(self, buffers: list[bytes]) -> None:
        chunk: list[bytes] = []
        size = 0
        for buf in buffers:
            chunk.append(buf)
            size += len(buf)
            if size >= _FALLBACK_CHUNK:
                self._sock.sendall(b"".join(chunk))
                chunk, size = [], 0
        if chunk:
            self._sock.sendall(b"".join(chunk))

    def recv(self, timeout: float | None = None) -> Frame | None:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        # frame length prefix
        if not self._fill(4, deadline, timeout):
            if len(self._buffer) == 0:
                return None  # orderly close at a frame boundary
            raise TransportError("connection closed mid-frame")
        (length,) = _LEN.unpack(self._buffer[:4])
        if length == 0:
            raise TransportError(f"bad frame length {length}")
        if length > self.max_frame_len:
            raise FrameTooLargeError(length, self.max_frame_len)
        if not self._fill(4 + length, deadline, timeout):
            raise TransportError("connection closed mid-frame")
        frame = decode_frame(bytes(self._buffer[4:4 + length]))
        del self._buffer[:4 + length]
        return frame

    def _fill(self, n: int, deadline, timeout) -> bool:
        """Grow the buffer to *n* bytes.  False on orderly EOF;
        raises TransportError on timeout (buffer preserved)."""
        while len(self._buffer) < n:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"recv timed out after {timeout}s")
                self._sock.settimeout(remaining)
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                raise TransportError(
                    f"recv timed out after {timeout}s") from None
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from None
            if not chunk:
                return False
            self._buffer.extend(chunk)
        return True

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            # Lingering half-close: shut down the send side (FIN after
            # all queued data), then briefly drain the receive side
            # before closing the descriptor.  Closing with unread
            # inbound data (the peer's HELLO, say) makes Linux send a
            # RST, which can destroy frames still in flight to the
            # peer — a send-only endpoint closing early would corrupt
            # the very stream it just finished writing.
            try:
                self._sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
            try:
                # clear anything already queued without blocking...
                self._sock.settimeout(0)
                try:
                    while self._sock.recv(_RECV_CHUNK):
                        pass
                except (BlockingIOError, socket.timeout):
                    pass
                # ...then give the peer a short window to FIN
                self._sock.settimeout(0.2)
                while self._sock.recv(_RECV_CHUNK):
                    pass
            except OSError:
                pass
            self._sock.close()


class TCPListener:
    """Accepts TCP channels on a bound port."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0,
                 max_frame_len: int = MAX_FRAME) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR,
                                  1)
        self._listener.bind((host, port))
        self._listener.listen(128)
        self.host, self.port = self._listener.getsockname()
        self.max_frame_len = max_frame_len

    def accept(self, timeout: float | None = None) -> TCPChannel:
        self._listener.settimeout(timeout)
        try:
            conn, _addr = self._listener.accept()
        except socket.timeout:
            raise TransportError(
                f"accept timed out after {timeout}s") from None
        except OSError as exc:
            raise TransportError(f"accept failed: {exc}") from None
        conn.settimeout(None)
        return TCPChannel(conn, max_frame_len=self.max_frame_len)

    def close(self) -> None:
        self._listener.close()

    def __enter__(self) -> "TCPListener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def tcp_pair(*, max_frame_len: int = MAX_FRAME) \
        -> tuple[TCPChannel, TCPChannel]:
    """A connected loopback channel pair (client end, server end)."""
    with TCPListener(max_frame_len=max_frame_len) as listener:
        client = TCPChannel.connect(listener.host, listener.port,
                                    max_frame_len=max_frame_len)
        server = listener.accept(timeout=5)
    return client, server
