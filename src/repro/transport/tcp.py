"""TCP channel: frames over a loopback (or LAN) socket.

:class:`TCPListener` accepts connections and wraps them; ``tcp_pair``
builds a connected loopback pair in one call for tests and benches.
"""

from __future__ import annotations

import socket
import struct
import time

from repro.errors import TransportError
from repro.transport.base import Channel
from repro.transport.messages import Frame, decode_frame

_LEN = struct.Struct(">I")
_RECV_CHUNK = 64 * 1024


class TCPChannel(Channel):
    """A channel over a connected TCP socket.

    Receives through a persistent reassembly buffer so a timed-out
    ``recv`` never discards partially arrived frame bytes — essential
    for callers that poll with short timeouts (control channels), where
    dropping a partial frame would desynchronize the stream.
    """

    def __init__(self, sock: socket.socket) -> None:
        self._sock = sock
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._closed = False
        self._buffer = bytearray()
        self.bytes_sent = 0
        self.frames_sent = 0

    @classmethod
    def connect(cls, host: str, port: int, *,
                timeout: float = 10.0) -> "TCPChannel":
        try:
            sock = socket.create_connection((host, port), timeout=timeout)
        except OSError as exc:
            raise TransportError(
                f"cannot connect to {host}:{port}: {exc}") from None
        sock.settimeout(None)
        return cls(sock)

    def send(self, frame: Frame) -> None:
        if self._closed:
            raise TransportError("send on closed channel")
        data = frame.encode()
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from None
        self.bytes_sent += len(data)
        self.frames_sent += 1

    def send_many(self, frames) -> None:
        """Coalesce several frames into one ``sendall`` (one syscall
        instead of one per frame)."""
        if self._closed:
            raise TransportError("send on closed channel")
        frames = list(frames)
        data = b"".join(frame.encode() for frame in frames)
        if not data:
            return
        try:
            self._sock.sendall(data)
        except OSError as exc:
            raise TransportError(f"send failed: {exc}") from None
        self.bytes_sent += len(data)
        self.frames_sent += len(frames)

    def recv(self, timeout: float | None = None) -> Frame | None:
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        # frame length prefix
        if not self._fill(4, deadline, timeout):
            if len(self._buffer) == 0:
                return None  # orderly close at a frame boundary
            raise TransportError("connection closed mid-frame")
        (length,) = _LEN.unpack(self._buffer[:4])
        if length == 0 or length > 256 * 1024 * 1024:
            raise TransportError(f"bad frame length {length}")
        if not self._fill(4 + length, deadline, timeout):
            raise TransportError("connection closed mid-frame")
        frame = decode_frame(bytes(self._buffer[4:4 + length]))
        del self._buffer[:4 + length]
        return frame

    def _fill(self, n: int, deadline, timeout) -> bool:
        """Grow the buffer to *n* bytes.  False on orderly EOF;
        raises TransportError on timeout (buffer preserved)."""
        while len(self._buffer) < n:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TransportError(
                        f"recv timed out after {timeout}s")
                self._sock.settimeout(remaining)
            else:
                self._sock.settimeout(None)
            try:
                chunk = self._sock.recv(_RECV_CHUNK)
            except socket.timeout:
                raise TransportError(
                    f"recv timed out after {timeout}s") from None
            except OSError as exc:
                raise TransportError(f"recv failed: {exc}") from None
            if not chunk:
                return False
            self._buffer.extend(chunk)
        return True

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            # Lingering half-close: shut down the send side (FIN after
            # all queued data), then briefly drain the receive side
            # before closing the descriptor.  Closing with unread
            # inbound data (the peer's HELLO, say) makes Linux send a
            # RST, which can destroy frames still in flight to the
            # peer — a send-only endpoint closing early would corrupt
            # the very stream it just finished writing.
            try:
                self._sock.shutdown(socket.SHUT_WR)
            except OSError:
                pass
            try:
                # clear anything already queued without blocking...
                self._sock.settimeout(0)
                try:
                    while self._sock.recv(_RECV_CHUNK):
                        pass
                except (BlockingIOError, socket.timeout):
                    pass
                # ...then give the peer a short window to FIN
                self._sock.settimeout(0.2)
                while self._sock.recv(_RECV_CHUNK):
                    pass
            except OSError:
                pass
            self._sock.close()


class TCPListener:
    """Accepts TCP channels on a bound port."""

    def __init__(self, *, host: str = "127.0.0.1", port: int = 0) -> None:
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR,
                                  1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()

    def accept(self, timeout: float | None = None) -> TCPChannel:
        self._listener.settimeout(timeout)
        try:
            conn, _addr = self._listener.accept()
        except socket.timeout:
            raise TransportError(
                f"accept timed out after {timeout}s") from None
        except OSError as exc:
            raise TransportError(f"accept failed: {exc}") from None
        conn.settimeout(None)
        return TCPChannel(conn)

    def close(self) -> None:
        self._listener.close()

    def __enter__(self) -> "TCPListener":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def tcp_pair() -> tuple[TCPChannel, TCPChannel]:
    """A connected loopback channel pair (client end, server end)."""
    with TCPListener() as listener:
        client = TCPChannel.connect(listener.host, listener.port)
        server = listener.accept(timeout=5)
    return client, server
