"""Hydrology datasets as PBIO data files.

Fig. 5's pipeline begins at a *data file*; the original demo read
simulation output from disk.  With :mod:`repro.pbio.iofile` the
reproduction can do the same: a watershed is written as interleaved
``GridMeta`` + ``SimpleData`` records (metadata embedded, so the file
is self-describing), and :class:`~repro.hydrology.components.DataFileReader`
streams it back without the generator in the loop.
"""

from __future__ import annotations

from pathlib import Path

from repro.hydrology.datagen import WatershedDataset
from repro.hydrology.formats import hydrology_field_specs
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.iofile import IOFileReader, IOFileWriter
from repro.pbio.machine import Architecture, NATIVE


def write_watershed_file(path: str | Path,
                         dataset: WatershedDataset, *,
                         architecture: Architecture = NATIVE) -> int:
    """Write *dataset* to a PBIO data file; returns record count.

    ``architecture`` selects the writer's native layout — a file
    written as big-endian ILP32 exercises the heterogeneous-read path
    on any reader.
    """
    ctx = IOContext(architecture=architecture,
                    format_server=FormatServer())
    specs = hydrology_field_specs(architecture)
    ctx.register_layout("GridMeta", specs["GridMeta"])
    ctx.register_layout("SimpleData", specs["SimpleData"])
    with IOFileWriter(path, ctx) as writer:
        for t in range(dataset.timesteps):
            writer.write("GridMeta", dataset.meta_record(t))
            writer.write("SimpleData", dataset.as_record(t))
        return writer.records_written


def read_watershed_records(path: str | Path, *,
                           arrays: str = "list"):
    """Iterate (format_name, record) pairs from a watershed file.

    ``arrays="view"`` streams grids as zero-copy read-only arrays over
    each record's private chunk buffer — the fast feed for pipelines
    that hand ``data`` straight to numpy.
    """
    with IOFileReader(path, arrays=arrays) as reader:
        for decoded in reader:
            yield decoded.format_name, decoded.record
