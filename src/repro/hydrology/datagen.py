"""Synthetic watershed data.

The NCSA demo read real hydrology simulation output from files; that
data is not available, so we generate a deterministic synthetic
watershed: a smoothed random elevation field, rainfall pulses, and a
simple surface-water accumulation so successive timesteps are
physically coherent (water collects in low cells and decays).  What
matters for the reproduction is the *shape* of the traffic — per-
timestep float grids of realistic size flowing through the pipeline —
not hydrological fidelity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _smooth(a: np.ndarray, passes: int) -> np.ndarray:
    """Cheap separable box smoothing with edge replication."""
    for _ in range(passes):
        padded = np.pad(a, 1, mode="edge")
        a = (padded[:-2, 1:-1] + padded[2:, 1:-1] + padded[1:-1, :-2]
             + padded[1:-1, 2:] + 4.0 * a) / 8.0
    return a


@dataclass
class WatershedDataset:
    """A generated watershed: terrain plus a water-depth time series."""

    nx: int
    ny: int
    cell_size: float
    elevation: np.ndarray = field(repr=False)
    depths: list[np.ndarray] = field(repr=False)
    gauge_rows: np.ndarray = field(repr=False)
    gauge_cols: np.ndarray = field(repr=False)

    @property
    def timesteps(self) -> int:
        return len(self.depths)

    def frame(self, t: int) -> np.ndarray:
        """Water depth grid at timestep *t* (float32, ny x nx)."""
        return self.depths[t]

    def gauges(self, t: int) -> np.ndarray:
        """Depth readings at the gauge stations for timestep *t*."""
        return self.depths[t][self.gauge_rows, self.gauge_cols]

    def as_record(self, t: int) -> dict:
        """The timestep as a ``SimpleData`` record (flattened grid)."""
        flat = self.frame(t).ravel()
        return {"timestep": t, "size": flat.size,
                "data": flat.astype(np.float32)}

    def meta_record(self, t: int) -> dict:
        """The timestep's ``GridMeta`` record."""
        depth = self.frame(t)
        gauges = self.gauges(t)
        return {
            "timestep": t, "nx": self.nx, "ny": self.ny,
            "west": 0.0, "east": float(self.nx * self.cell_size),
            "south": 0.0, "north": float(self.ny * self.cell_size),
            "cell_size": float(self.cell_size), "no_data": -9999.0,
            "min_depth": float(depth.min()),
            "max_depth": float(depth.max()),
            "mean_depth": float(depth.mean()),
            "total_volume": float(depth.sum() * self.cell_size ** 2),
            "gauge_count": len(gauges),
            "gauges": gauges.astype(np.float32).tolist(),
        }


def generate_watershed(nx: int = 64, ny: int = 64, timesteps: int = 16,
                       *, seed: int = 20010601, gauge_count: int = 24,
                       cell_size: float = 30.0) -> WatershedDataset:
    """Generate a deterministic synthetic watershed.

    The default seed pins every experiment to one dataset; tests vary
    it to cover the generator itself.
    """
    rng = np.random.default_rng(seed)
    elevation = _smooth(rng.random((ny, nx)), passes=6) * 100.0

    # Water accumulates where elevation is low; rainfall pulses add
    # mass, diffusion spreads it, decay drains it.
    depth = np.zeros((ny, nx), dtype=np.float64)
    lowness = elevation.max() - elevation
    lowness /= max(lowness.max(), 1e-9)
    depths: list[np.ndarray] = []
    for t in range(timesteps):
        rain = 1.0 + 0.5 * np.sin(2.0 * np.pi * t / max(timesteps, 1))
        depth = depth + rain * lowness * 0.1
        depth = _smooth(depth, passes=1)
        depth *= 0.98  # drainage
        depths.append(depth.astype(np.float32))

    gauge_rows = rng.integers(0, ny, size=gauge_count)
    gauge_cols = rng.integers(0, nx, size=gauge_count)
    return WatershedDataset(nx=nx, ny=ny, cell_size=cell_size,
                            elevation=elevation, depths=depths,
                            gauge_rows=gauge_rows, gauge_cols=gauge_cols)
