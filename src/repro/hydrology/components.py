"""Pipeline components (Fig. 5).

Each component owns an :class:`~repro.pbio.context.IOContext`, loads
the shared Hydrology format set through XMIT (the paper's modification:
"We removed the compiled-in metadata definitions from the application,
and used XMIT to retrieve the message formats from an HTTP server"),
and exchanges PBIO-encoded records over
:class:`~repro.transport.connection.Connection` objects.

Solid arrows in Fig. 5 are the data flow (``SimpleData`` grids plus
``GridMeta``); dashed arrows are control/feedback (``ControlMsg`` from
the GUIs back through the coupler to flow2d, which adjusts its
parameters mid-run).

Because every component loads the same format documents, their
digest-derived format IDs coincide and steady-state records need no
metadata negotiation — precisely the paper's amortization argument.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.core.toolkit import XMIT
from repro.errors import TransportError
from repro.obs import runtime as _obs
from repro.obs.metrics import COMPONENT_MESSAGES
from repro.hydrology.datagen import WatershedDataset
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.transport.connection import Connection, ReceivedMessage

_POLL = 0.002  # seconds: non-blocking-ish control poll


class ComponentStats:
    """Per-component message accounting.

    Counts are kept per format name under a lock (components touch
    their own stats from the worker thread while the driver reads
    them), and mirrored into the process-wide :mod:`repro.obs`
    registry as ``repro_component_messages_total{component,format,
    direction}`` so a pipeline's message flow shows up on
    ``/metrics``.
    """

    def __init__(self, component: str = "") -> None:
        self.component = component
        self._lock = threading.Lock()
        self.received: dict[str, int] = {}
        self.sent: dict[str, int] = {}

    def count_in(self, format_name: str) -> None:
        with self._lock:
            self.received[format_name] = \
                self.received.get(format_name, 0) + 1
        if _obs.enabled:
            COMPONENT_MESSAGES.labels(
                self.component, format_name, "in").inc()

    def count_out(self, format_name: str) -> None:
        with self._lock:
            self.sent[format_name] = self.sent.get(format_name, 0) + 1
        if _obs.enabled:
            COMPONENT_MESSAGES.labels(
                self.component, format_name, "out").inc()


class Component(threading.Thread):
    """Base: an IOContext wired to XMIT-discovered formats.

    ``architecture`` simulates running the component on a different
    machine class (the paper's testbed mixed SPARC and x86 hosts);
    receiver-makes-right conversion keeps mixed pipelines exchanging
    records transparently.

    ``arrays`` selects how this component's connections decode numeric
    arrays (``"list"`` default, ``"numpy"``, or zero-copy read-only
    ``"view"`` — grids then flow from the receive buffer into numpy
    without a Python-list round-trip).
    """

    def __init__(self, name: str, schema_url: str,
                 architecture=None, *, arrays: str = "list") -> None:
        super().__init__(name=f"hydrology-{name}", daemon=True)
        self.component_name = name
        self.arrays = arrays
        kwargs = {} if architecture is None else \
            {"architecture": architecture}
        self.context = IOContext(format_server=FormatServer(),
                                 **kwargs)
        self.xmit = XMIT()
        self.stats = ComponentStats(component=name)
        self.error: BaseException | None = None
        from repro.pbio.machine import all_architectures
        for fmt_name in self.xmit.load_url(schema_url):
            self.xmit.register_with_context(self.context, fmt_name)
            # Pre-warm the local format server with every modeled
            # architecture's variant of the shared formats: records
            # from peers on other machine classes then resolve locally
            # (send-only peers cannot answer metadata requests).
            for arch in all_architectures():
                token = self.xmit.bind(fmt_name, target="pbio",
                                       architecture=arch)
                self.context.format_server.register(token.artifact)

    # -- helpers ------------------------------------------------------------

    def _connect(self, endpoint) -> Connection | None:
        """Accept a Channel (wrapped into a Connection on this
        component's context), an existing Connection, or None."""
        if endpoint is None or isinstance(endpoint, Connection):
            return endpoint
        return Connection(self.context, endpoint, arrays=self.arrays)

    def _send(self, conn: Connection, format_name: str,
              record: dict) -> None:
        conn.send(format_name, record)
        self.stats.count_out(format_name)

    def _send_many(self, conn: Connection, format_name: str,
                   records) -> None:
        records = list(records)
        conn.send_many(format_name, records)
        for _ in records:
            self.stats.count_out(format_name)

    def _recv(self, conn: Connection,
              timeout: float | None = None) -> ReceivedMessage | None:
        msg = conn.receive(timeout)
        if msg is not None:
            self.stats.count_in(msg.format_name)
        return msg

    def _poll(self, conn: Connection) -> ReceivedMessage | None:
        """Non-blocking control poll: None when nothing is waiting."""
        try:
            return self._recv(conn, timeout=_POLL)
        except TransportError:
            return None

    def run(self) -> None:  # pragma: no cover - thin thread wrapper
        try:
            self.process()
        except BaseException as exc:  # surfaced by the pipeline joiner
            self.error = exc
        finally:
            # Always release connections: a component dying mid-stream
            # must still deliver end-of-stream downstream, or the rest
            # of the pipeline blocks forever instead of draining.
            self._close_connections()

    def _close_connections(self) -> None:
        for value in vars(self).values():
            candidates = (value if isinstance(value, list)
                          else [value])
            for item in candidates:
                if isinstance(item, Connection):
                    try:
                        item.close()
                    except Exception:  # noqa: BLE001 - best effort
                        pass

    def process(self) -> None:
        raise NotImplementedError


class DataFileReader(Component):
    """Reads the data file and emits one ``GridMeta`` +
    ``SimpleData`` pair per timestep.

    ``source`` may be an in-memory :class:`WatershedDataset` or a path
    to a PBIO data file written by
    :func:`repro.hydrology.datafile.write_watershed_file` — the
    pipeline downstream cannot tell the difference.
    """

    def __init__(self, schema_url: str, source, out, *,
                 batch: int = 1, architecture=None,
                 arrays: str = "list") -> None:
        super().__init__("reader", schema_url, architecture,
                         arrays=arrays)
        if batch < 1:
            raise ValueError("batch size must be >= 1")
        self.source = source
        self.batch = batch
        self.out = self._connect(out)

    def process(self) -> None:
        if isinstance(self.source, WatershedDataset):
            if self.batch > 1:
                self._process_batched()
            else:
                for t in range(self.source.timesteps):
                    self._send(self.out, "GridMeta",
                               self.source.meta_record(t))
                    self._send(self.out, "SimpleData",
                               self.source.as_record(t))
        else:
            from repro.hydrology.datafile import read_watershed_records
            for format_name, record in read_watershed_records(
                    self.source, arrays=self.arrays):
                self._send(self.out, format_name, record)
        self.out.close()

    def _process_batched(self) -> None:
        """Ship the dataset in shared-header batches: one DATA_BATCH of
        ``GridMeta`` then one of ``SimpleData`` per *batch* timesteps.
        Downstream pairs them back up by ``timestep``, so batching is
        invisible above the transport."""
        steps = range(self.source.timesteps)
        for lo in range(0, self.source.timesteps, self.batch):
            chunk = steps[lo:lo + self.batch]
            self._send_many(self.out, "GridMeta",
                            [self.source.meta_record(t) for t in chunk])
            self._send_many(self.out, "SimpleData",
                            [self.source.as_record(t) for t in chunk])


class Presend(Component):
    """Reduces data volume before wide-area transmission.

    Downsamples each grid by ``factor`` in both dimensions (mean
    pooling), rewriting the accompanying ``GridMeta`` accordingly —
    the role the original demo's presend stage played for its
    bandwidth-limited visualization clients.
    """

    def __init__(self, schema_url: str, inbound, out, *,
                 factor: int = 2, architecture=None,
                 arrays: str = "list") -> None:
        super().__init__("presend", schema_url, architecture,
                         arrays=arrays)
        if factor < 1:
            raise ValueError("downsampling factor must be >= 1")
        self.inbound = self._connect(inbound)
        self.out = self._connect(out)
        self.factor = factor
        self._meta: dict | None = None
        #: metadata keyed by timestep: batched senders deliver a run of
        #: GridMeta before the matching run of SimpleData, so pairing
        #: cannot rely on strict interleaving
        self._metas: dict[int, dict] = {}

    def process(self) -> None:
        while True:
            msg = self._recv(self.inbound)
            if msg is None:
                break
            if msg.format_name == "GridMeta":
                self._meta = dict(msg.record)
                self._metas[msg.record["timestep"]] = self._meta
                continue  # forwarded alongside its SimpleData below
            if msg.format_name != "SimpleData" or self._meta is None:
                continue
            meta = self._metas.pop(msg.record["timestep"], None) \
                or self._meta
            grid = np.asarray(msg.record["data"], dtype=np.float32)
            grid = grid.reshape(meta["ny"], meta["nx"])
            reduced = self._downsample(grid)
            meta = dict(meta)
            meta["ny"], meta["nx"] = reduced.shape
            meta["cell_size"] = meta["cell_size"] * self.factor
            meta["mean_depth"] = float(reduced.mean())
            meta["min_depth"] = float(reduced.min())
            meta["max_depth"] = float(reduced.max())
            self._send(self.out, "GridMeta", meta)
            self._send(self.out, "SimpleData", {
                "timestep": msg.record["timestep"],
                "size": reduced.size,
                "data": reduced.ravel()})
        self.out.close()

    def _downsample(self, grid: np.ndarray) -> np.ndarray:
        f = self.factor
        if f == 1:
            return grid
        ny, nx = grid.shape
        ny_r, nx_r = ny - ny % f, nx - nx % f
        view = grid[:ny_r, :nx_r].reshape(ny_r // f, f, nx_r // f, f)
        return view.mean(axis=(1, 3))


class Flow2D(Component):
    """Derives a 2-D flow-magnitude field from each depth grid.

    A simple gradient-driven surface-flow estimate: flow magnitude is
    ``depth * |grad(depth + elevation-proxy)|`` smoothed ``iterations``
    times.  Control feedback (``ControlMsg`` with command
    ``set_viscosity``) adjusts the smoothing weight mid-run, exercising
    Fig. 5's dashed channels.
    """

    def __init__(self, schema_url: str, inbound, out,
                 control=None, *, viscosity: float = 0.2,
                 iterations: int = 2, architecture=None,
                 arrays: str = "list") -> None:
        super().__init__("flow2d", schema_url, architecture,
                         arrays=arrays)
        self.inbound = self._connect(inbound)
        self.out = self._connect(out)
        self.control = self._connect(control)
        self.viscosity = viscosity
        self.iterations = iterations
        self._meta: dict | None = None
        self._metas: dict[int, dict] = {}  # keyed for batched senders
        self.control_applied: list[dict] = []

    def process(self) -> None:
        while True:
            self._drain_control()
            msg = self._recv(self.inbound)
            if msg is None:
                break
            if msg.format_name == "GridMeta":
                self._meta = dict(msg.record)
                self._metas[msg.record["timestep"]] = self._meta
                self._send(self.out, "GridMeta", msg.record)
                continue
            if msg.format_name != "SimpleData" or self._meta is None:
                continue
            self._meta = self._metas.pop(msg.record["timestep"],
                                         None) or self._meta
            flow = self._flow_field(np.asarray(msg.record["data"],
                                               dtype=np.float32))
            self._send(self.out, "FlowParams", {
                "timestep": msg.record["timestep"],
                "nx": self._meta["nx"], "ny": self._meta["ny"],
                "dx": self._meta["cell_size"],
                "dy": self._meta["cell_size"],
                "dt": 1.0, "viscosity": self.viscosity,
                "rainfall": 0.0, "iterations": self.iterations,
                "flags": 0, "elapsed": float(msg.record["timestep"])})
            self._send(self.out, "SimpleData", {
                "timestep": msg.record["timestep"],
                "size": flow.size, "data": flow.ravel()})
        self.out.close()

    def _drain_control(self) -> None:
        if self.control is None:
            return
        while True:
            msg = self._poll(self.control)
            if msg is None:
                return
            if msg.format_name == "ControlMsg" and \
                    msg.record["command"] == "set_viscosity":
                self.viscosity = float(msg.record["value"])
                self.control_applied.append(dict(msg.record))

    def _flow_field(self, flat: np.ndarray) -> np.ndarray:
        meta = self._meta
        depth = flat.reshape(meta["ny"], meta["nx"]).astype(np.float64)
        gy, gx = np.gradient(depth, meta["cell_size"])
        flow = depth * np.hypot(gx, gy)
        for _ in range(self.iterations):
            padded = np.pad(flow, 1, mode="edge")
            neighbor_mean = (padded[:-2, 1:-1] + padded[2:, 1:-1] +
                             padded[1:-1, :-2] + padded[1:-1, 2:]) / 4.0
            flow = (1 - self.viscosity) * flow + \
                self.viscosity * neighbor_mean
        return flow.astype(np.float32)


class Coupler(Component):
    """Fans data out to the visualization clients and routes their
    control feedback upstream."""

    def __init__(self, schema_url: str, inbound, outs,
                 control_out=None, *, architecture=None) -> None:
        super().__init__("coupler", schema_url, architecture)
        self.inbound = self._connect(inbound)
        self.outs = [self._connect(out) for out in outs]
        self.control_out = self._connect(control_out)
        self.control_forwarded = 0

    def process(self) -> None:
        while True:
            msg = self._recv(self.inbound)
            self._route_feedback()
            if msg is None:
                break
            for out in self.outs:
                self._send(out, msg.format_name, msg.record)
        for out in self.outs:
            out.close()
        if self.control_out is not None:
            self.control_out.close()

    def _route_feedback(self) -> None:
        for out in self.outs:
            fb = self._poll(out)
            if fb is not None and fb.format_name == "ControlMsg":
                if self.control_out is not None:
                    self._send(self.control_out, "ControlMsg", fb.record)
                    self.control_forwarded += 1


class BroadcastCoupler(Component):
    """The fan-out deployment of Fig. 5's coupler: instead of two
    wired GUI channels, every record from upstream is encoded once
    and broadcast to however many subscribers have connected — the
    "single servers must provide information to large numbers of
    clients" scenario of the paper's introduction.

    Subscribers attach with an ordinary
    :class:`~repro.transport.connection.Connection` against
    ``host:port``; format metadata is pushed to each of them once per
    format, so their steady-state cost is pure decoding.
    """

    def __init__(self, schema_url: str, inbound, *,
                 host: str = "127.0.0.1", port: int = 0,
                 policy="block",
                 max_queue_bytes: int = 4 * 1024 * 1024,
                 min_subscribers: int = 0,
                 subscriber_timeout: float = 30.0,
                 architecture=None) -> None:
        super().__init__("broadcast", schema_url, architecture)
        from repro.transport.broadcast import BroadcastPublisher
        self.inbound = self._connect(inbound)
        self.min_subscribers = min_subscribers
        self.subscriber_timeout = subscriber_timeout
        self.publisher = BroadcastPublisher(
            self.context, host=host, port=port, policy=policy,
            max_queue_bytes=max_queue_bytes).start()
        self.host, self.port = self.publisher.host, self.publisher.port

    def process(self) -> None:
        try:
            if self.min_subscribers and not \
                    self.publisher.wait_for_subscribers(
                        self.min_subscribers, self.subscriber_timeout):
                raise TransportError(
                    f"only {self.publisher.subscriber_count} of "
                    f"{self.min_subscribers} subscribers arrived "
                    f"within {self.subscriber_timeout}s")
            while True:
                msg = self._recv(self.inbound)
                if msg is None:
                    break
                self.publisher.publish(msg.format_name, msg.record)
                self.stats.count_out(msg.format_name)
        finally:
            self.publisher.close()


class Vis5DSink(Component):
    """Stands in for the Vis5D GUI: consumes frames, records render
    statistics, and occasionally sends control feedback upstream."""

    def __init__(self, schema_url: str, inbound, *,
                 gui_name: str = "vis5d",
                 feedback_every: int = 0,
                 feedback_value: float = 0.35,
                 architecture=None) -> None:
        super().__init__(gui_name, schema_url, architecture)
        self.inbound = self._connect(inbound)
        self.feedback_every = feedback_every
        self.feedback_value = feedback_value
        self.frames: list[dict] = []
        self.metas: list[dict] = []
        self.flow_params: list[dict] = []

    def process(self) -> None:
        while True:
            msg = self._recv(self.inbound)
            if msg is None:
                break
            if msg.format_name == "GridMeta":
                self.metas.append(msg.record)
            elif msg.format_name == "FlowParams":
                self.flow_params.append(msg.record)
            elif msg.format_name == "SimpleData":
                data = np.asarray(msg.record["data"], dtype=np.float32)
                self.frames.append({
                    "timestep": msg.record["timestep"],
                    "cells": int(data.size),
                    "min": float(data.min()) if data.size else 0.0,
                    "max": float(data.max()) if data.size else 0.0,
                    "mean": float(data.mean()) if data.size else 0.0,
                })
                if self.feedback_every and \
                        len(self.frames) % self.feedback_every == 0:
                    self._send(self.inbound, "ControlMsg", {
                        "command": "set_viscosity",
                        "target": "flow2d",
                        "timestep": msg.record["timestep"],
                        "value": self.feedback_value})


def render_ascii(grid: np.ndarray, *, width: int = 64,
                 palette: str = " .:-=+*#%@") -> str:
    """A terminal 'Vis5D': render a 2-D field as ASCII intensity art.

    Downsamples to at most *width* columns (mean pooling, aspect
    corrected for terminal cells being ~2x taller than wide) and maps
    normalized values onto *palette*.  Used by the examples to show
    what the GUI sinks received without a display.
    """
    grid = np.asarray(grid, dtype=np.float64)
    if grid.ndim != 2:
        raise ValueError("render_ascii expects a 2-D field")
    ny, nx = grid.shape
    step = max(1, (nx + width - 1) // width)
    ystep = step * 2  # terminal aspect correction
    ny_r, nx_r = ny - ny % ystep, nx - nx % step
    if ny_r and nx_r:
        pooled = grid[:ny_r, :nx_r].reshape(
            ny_r // ystep, ystep, nx_r // step, step).mean(axis=(1, 3))
    else:
        pooled = grid
    lo, hi = float(pooled.min()), float(pooled.max())
    span = (hi - lo) or 1.0
    levels = ((pooled - lo) / span * (len(palette) - 1)).round()
    lines = ["".join(palette[int(v)] for v in row) for row in levels]
    return "\n".join(lines)
