"""Hydrology message formats.

Reproduces the shared format set of the paper's Fig. 4 and the four
structures whose registration/encoding costs Figs. 6 and 7 report.  The
paper names two of them explicitly:

* ``SimpleData``   -- ``{int timestep; int size; float *data;}``
  (12 bytes on the ILP32 SPARC the paper measured);
* ``JoinRequest``  -- ``{char *name; unsigned server; unsigned long
  ip_addr; pid_t pid; unsigned long ds_addr;}`` (20 bytes ILP32).

The 44- and 152-byte structures are not printed in the paper; we
reconstruct plausible members consistent with the text's
characterization ("constructed of a large number of primitive data
types") and their ILP32 sizes:

* ``FlowParams``   -- 11 x 4-byte scalars = 44 bytes: the control
  message steering flow2d;
* ``GridMeta``     -- 38 x 4-byte scalars = 152 bytes: per-timestep
  grid georeferencing + gauge readings, all primitives, matching the
  paper's observation that its RDM (4) exceeds that of the
  composition-heavy 180-byte proof-of-concept structure (1.92).

Both the XSD text (for XMIT discovery) and equivalent PBIO field specs
(for compiled-in baselines) are provided, so experiments can run the
two discovery paths over identical formats.
"""

from __future__ import annotations

from repro.core.toolkit import XMIT
from repro.http.urls import publish_document
from repro.pbio.machine import Architecture, NATIVE

#: Gauge count in GridMeta: 24 gauges + 14 header scalars = 38 words.
GAUGE_COUNT = 24

#: Per-format XSD fragments (assembled by :func:`hydrology_xsd_for`).
HYDROLOGY_FRAGMENTS: dict[str, str] = {
    "SimpleData": """\
  <xsd:complexType name="SimpleData">
    <xsd:element name="timestep" type="xsd:integer" />
    <xsd:element name="size" type="xsd:integer" />
    <xsd:element name="data" type="xsd:float" minOccurs="0"
                 maxOccurs="*" dimensionPlacement="before"
                 dimensionName="size" />
  </xsd:complexType>
""",
    "JoinRequest": """\
  <xsd:complexType name="JoinRequest">
    <xsd:element name="name" type="xsd:string" />
    <xsd:element name="server" type="xsd:unsignedLong" />
    <xsd:element name="ip_addr" type="xsd:unsignedLong" />
    <xsd:element name="pid" type="xsd:unsignedLong" />
    <xsd:element name="ds_addr" type="xsd:unsignedLong" />
  </xsd:complexType>
""",
    "FlowParams": """\
  <xsd:complexType name="FlowParams">
    <xsd:element name="timestep" type="xsd:int" />
    <xsd:element name="nx" type="xsd:int" />
    <xsd:element name="ny" type="xsd:int" />
    <xsd:element name="dx" type="xsd:float" />
    <xsd:element name="dy" type="xsd:float" />
    <xsd:element name="dt" type="xsd:float" />
    <xsd:element name="viscosity" type="xsd:float" />
    <xsd:element name="rainfall" type="xsd:float" />
    <xsd:element name="iterations" type="xsd:int" />
    <xsd:element name="flags" type="xsd:int" />
    <xsd:element name="elapsed" type="xsd:float" />
  </xsd:complexType>
""",
    "GridMeta": """\
  <xsd:complexType name="GridMeta">
    <xsd:element name="timestep" type="xsd:int" />
    <xsd:element name="nx" type="xsd:int" />
    <xsd:element name="ny" type="xsd:int" />
    <xsd:element name="west" type="xsd:float" />
    <xsd:element name="east" type="xsd:float" />
    <xsd:element name="south" type="xsd:float" />
    <xsd:element name="north" type="xsd:float" />
    <xsd:element name="cell_size" type="xsd:float" />
    <xsd:element name="no_data" type="xsd:float" />
    <xsd:element name="min_depth" type="xsd:float" />
    <xsd:element name="max_depth" type="xsd:float" />
    <xsd:element name="mean_depth" type="xsd:float" />
    <xsd:element name="total_volume" type="xsd:float" />
    <xsd:element name="gauge_count" type="xsd:int" />
    <xsd:element name="gauges" type="xsd:float" maxOccurs="24" />
  </xsd:complexType>
""",
    "ControlMsg": """\
  <xsd:complexType name="ControlMsg">
    <xsd:element name="command" type="xsd:string" />
    <xsd:element name="target" type="xsd:string" />
    <xsd:element name="timestep" type="xsd:int" />
    <xsd:element name="value" type="xsd:float" />
  </xsd:complexType>
""",
}


def hydrology_xsd_for(*names: str) -> str:
    """A schema document containing exactly the named formats."""
    body = "".join(HYDROLOGY_FRAGMENTS[name] for name in names)
    return ('<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">\n'
            + body + "</xsd:schema>\n")


#: The full shared format document the pipeline components load.
HYDROLOGY_SCHEMA_XSD = hydrology_xsd_for("SimpleData", "JoinRequest", "FlowParams", "GridMeta", "ControlMsg")


#: Compiled-in PBIO field specs for the same formats, keyed by name —
#: the baseline discovery path (Figs. 6 and 7's "PBIO" series).
def hydrology_field_specs(architecture: Architecture = NATIVE) \
        -> dict[str, list]:
    """``(name, type[, size])`` specs per format for *architecture*.

    Sizes that depend on the C type model (``unsigned long``, ``int``)
    are taken from the architecture, exactly as compiled C code would.
    """
    ulong = architecture.sizeof("long")
    word = architecture.sizeof("int")
    return {
        "SimpleData": [
            ("timestep", "integer", word),
            ("size", "integer", word),
            ("data", "float[size]", 4),
        ],
        "JoinRequest": [
            ("name", "string"),
            ("server", "unsigned integer", ulong),
            ("ip_addr", "unsigned integer", ulong),
            ("pid", "unsigned integer", ulong),
            ("ds_addr", "unsigned integer", ulong),
        ],
        "FlowParams": [
            ("timestep", "integer", word), ("nx", "integer", word),
            ("ny", "integer", word), ("dx", "float", 4),
            ("dy", "float", 4), ("dt", "float", 4),
            ("viscosity", "float", 4), ("rainfall", "float", 4),
            ("iterations", "integer", word), ("flags", "integer", word),
            ("elapsed", "float", 4),
        ],
        "GridMeta": [
            ("timestep", "integer", word), ("nx", "integer", word),
            ("ny", "integer", word), ("west", "float", 4),
            ("east", "float", 4), ("south", "float", 4),
            ("north", "float", 4), ("cell_size", "float", 4),
            ("no_data", "float", 4), ("min_depth", "float", 4),
            ("max_depth", "float", 4), ("mean_depth", "float", 4),
            ("total_volume", "float", 4),
            ("gauge_count", "integer", word),
            ("gauges", f"float[{GAUGE_COUNT}]", 4),
        ],
        "ControlMsg": [
            ("command", "string"), ("target", "string"),
            ("timestep", "integer", word), ("value", "float", 4),
        ],
    }


def publish_hydrology_schema(name: str = "hydrology.xsd") -> str:
    """Publish the schema at ``mem:<name>``; returns the URL (the
    experiments' stand-in for the paper's Apache-hosted documents)."""
    return publish_document(name, HYDROLOGY_SCHEMA_XSD)


def hydrology_xmit() -> XMIT:
    """An XMIT instance pre-loaded with the Hydrology formats."""
    xmit = XMIT()
    xmit.load_url(publish_hydrology_schema())
    return xmit
