"""The Hydrology demonstration application.

The paper validates XMIT on "one of the earlier 'portal' demonstrations
developed by NCSA researchers, a component-based visualization system
for hydrology data" (Fig. 5): a data file feeds a *presend* stage, a
*flow2d* processing component, a *coupler*, and two Vis5D GUI
visualization components, all sharing one set of message formats over
data and control channels.

The original demo's data and Vis5D renderer are unavailable, so this
package substitutes (per DESIGN.md): a synthetic watershed generator
(:mod:`repro.hydrology.datagen`), a 2-D shallow-water-style flow update
(:mod:`repro.hydrology.components`), and a statistics-reporting
visualization sink.  The message formats (:mod:`repro.hydrology.formats`)
reproduce Fig. 4's structures — including ``SimpleData`` and
``JoinRequest`` verbatim — with the byte sizes the paper's Figs. 6 and 7
measure.
"""

from repro.hydrology.formats import (
    HYDROLOGY_SCHEMA_XSD,
    hydrology_field_specs,
    hydrology_xmit,
    publish_hydrology_schema,
)
from repro.hydrology.datagen import WatershedDataset, generate_watershed
from repro.hydrology.components import (
    Component,
    Coupler,
    DataFileReader,
    Flow2D,
    Presend,
    Vis5DSink,
)
from repro.hydrology.pipeline import PipelineReport, run_pipeline

__all__ = [
    "Component",
    "Coupler",
    "DataFileReader",
    "Flow2D",
    "HYDROLOGY_SCHEMA_XSD",
    "PipelineReport",
    "Presend",
    "Vis5DSink",
    "WatershedDataset",
    "generate_watershed",
    "hydrology_field_specs",
    "hydrology_xmit",
    "publish_hydrology_schema",
    "run_pipeline",
]
