"""Minimal HTTP/1.0 GET client over raw sockets.

Speaks just enough HTTP for metadata retrieval from
:class:`repro.http.server.MetadataHTTPServer` (or any HTTP server
serving small documents): one GET, ``Connection: close``, status line +
headers + body.
"""

from __future__ import annotations

import socket
from dataclasses import dataclass, field

from repro.errors import HTTPError
from repro.http.retry import RetryPolicy, call_with_retry

_MAX_HEADER_BYTES = 64 * 1024
_RECV_CHUNK = 64 * 1024


@dataclass
class HTTPResponse:
    """A parsed HTTP response."""

    status: int
    reason: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""


def http_get(host: str, port: int, path: str, *,
             timeout: float = 10.0,
             retry: RetryPolicy | None = None) -> HTTPResponse:
    """Issue ``GET path`` and return the parsed response.

    With *retry*, connection-level failures (refused, dropped,
    truncated, malformed response) are retried under the policy, whose
    per-attempt ``timeout`` overrides *timeout*.  Status codes are
    returned, not raised — 5xx retry lives in the resolver layer
    (:func:`repro.http.urls.fetch`).
    """
    if retry is not None:
        return call_with_retry(
            lambda: _http_get_once(host, port, path,
                                   timeout=retry.timeout),
            retry)
    return _http_get_once(host, port, path, timeout=timeout)


def _http_get_once(host: str, port: int, path: str, *,
                   timeout: float) -> HTTPResponse:
    if not path.startswith("/"):
        path = "/" + path
    request = (f"GET {path} HTTP/1.0\r\n"
               f"Host: {host}:{port}\r\n"
               f"User-Agent: repro-xmit/1.0\r\n"
               f"Connection: close\r\n"
               f"\r\n").encode("ascii")
    try:
        with socket.create_connection((host, port),
                                      timeout=timeout) as sock:
            sock.sendall(request)
            raw = _read_all(sock)
    except OSError as exc:
        raise HTTPError(
            f"GET http://{host}:{port}{path} failed: {exc}") from None
    return _parse_response(raw, host, port, path)


def _read_all(sock: socket.socket) -> bytes:
    chunks: list[bytes] = []
    while True:
        chunk = sock.recv(_RECV_CHUNK)
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks)


def _parse_response(raw: bytes, host: str, port: int,
                    path: str) -> HTTPResponse:
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        raise HTTPError(
            f"malformed HTTP response from {host}:{port}{path} "
            "(no header terminator)")
    if len(head) > _MAX_HEADER_BYTES:
        raise HTTPError("HTTP response headers too large")
    lines = head.decode("latin-1").split("\r\n")
    status_parts = lines[0].split(" ", 2)
    if len(status_parts) < 2 or not status_parts[0].startswith("HTTP/"):
        raise HTTPError(f"malformed status line {lines[0]!r}")
    try:
        status = int(status_parts[1])
    except ValueError:
        raise HTTPError(f"malformed status code in {lines[0]!r}") from None
    reason = status_parts[2] if len(status_parts) > 2 else ""
    headers: dict[str, str] = {}
    for line in lines[1:]:
        name, colon, value = line.partition(":")
        if colon:
            headers[name.strip().lower()] = value.strip()
    declared = headers.get("content-length")
    if declared is not None:
        try:
            expected = int(declared)
        except ValueError:
            raise HTTPError(
                f"malformed Content-Length header {declared!r} from "
                f"{host}:{port}{path}") from None
        if len(body) < expected:
            raise HTTPError(
                f"truncated body: {len(body)} of {expected} bytes")
        body = body[:expected]
    return HTTPResponse(status=status, reason=reason, headers=headers,
                        body=body)
