"""URL parsing and scheme resolvers for metadata discovery.

Three schemes cover the paper's usage and our hermetic testing needs:

``http://host[:port]/path``
    Fetched with :func:`repro.http.client.http_get` (our own HTTP/1.0
    client; the server side is :class:`repro.http.server.MetadataHTTPServer`).
``file:///absolute/path`` or ``file:relative/path``
    Read from the local filesystem.
``mem:name``
    Looked up in the in-process document registry populated with
    :func:`publish_document` — the zero-network path used throughout
    the test suite and the RDM benchmarks (the paper's RDM excludes
    network fetch time; ``mem:`` makes that exclusion exact).
"""

from __future__ import annotations

import re
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro.errors import DiscoveryError, MetadataNotFoundError
from repro.http.retry import DiscoveryStats, RetryPolicy, call_with_retry

_URL_RE = re.compile(r"^([A-Za-z][A-Za-z0-9+.-]*):(.*)$", re.DOTALL)
_AUTHORITY_RE = re.compile(
    r"^//(?P<host>[^/:]+)(?::(?P<port>\d+))?(?P<path>/.*)?$")


@dataclass(frozen=True)
class ParsedURL:
    """A decomposed URL: scheme, optional authority, path."""

    scheme: str
    host: str | None
    port: int | None
    path: str

    def __str__(self) -> str:
        if self.host is not None:
            port = f":{self.port}" if self.port is not None else ""
            return f"{self.scheme}://{self.host}{port}{self.path}"
        return f"{self.scheme}:{self.path}"


def parse_url(url: str) -> ParsedURL:
    """Parse *url*; raises :class:`DiscoveryError` on malformed input."""
    match = _URL_RE.match(url)
    if not match:
        raise DiscoveryError(f"malformed URL {url!r} (missing scheme)")
    scheme = match.group(1).lower()
    rest = match.group(2)
    if rest.startswith("//"):
        if rest.startswith("///"):
            # empty authority (file:///path): everything is the path
            return ParsedURL(scheme=scheme, host=None, port=None,
                             path=rest[2:])
        auth = _AUTHORITY_RE.match(rest)
        if not auth:
            raise DiscoveryError(f"malformed authority in URL {url!r}")
        port = auth.group("port")
        return ParsedURL(scheme=scheme, host=auth.group("host"),
                         port=int(port) if port else None,
                         path=auth.group("path") or "/")
    return ParsedURL(scheme=scheme, host=None, port=None, path=rest)


# ---------------------------------------------------------------------------
# in-process registry (mem: scheme)
# ---------------------------------------------------------------------------

_MEM_LOCK = threading.Lock()
_MEM_DOCS: dict[str, bytes] = {}


def publish_document(name: str, content: str | bytes) -> str:
    """Publish *content* under ``mem:name``; returns the URL."""
    data = content.encode("utf-8") if isinstance(content, str) else content
    with _MEM_LOCK:
        _MEM_DOCS[name] = data
    return f"mem:{name}"


def unpublish_document(name: str) -> None:
    with _MEM_LOCK:
        _MEM_DOCS.pop(name, None)


def _resolve_mem(url: ParsedURL) -> bytes:
    with _MEM_LOCK:
        try:
            return _MEM_DOCS[url.path]
        except KeyError:
            raise MetadataNotFoundError(
                f"no document published at mem:{url.path}") from None


def _resolve_file(url: ParsedURL) -> bytes:
    path = Path(url.path)
    try:
        return path.read_bytes()
    except FileNotFoundError:
        raise MetadataNotFoundError(
            f"cannot read {url}: no such file") from None
    except OSError as exc:
        raise DiscoveryError(f"cannot read {url}: {exc}") from None


def _resolve_http(url: ParsedURL) -> bytes:
    from repro.http.client import http_get  # local import: avoid cycle
    if url.host is None:
        raise DiscoveryError(f"http URL {url} has no host")
    response = http_get(url.host, url.port or 80, url.path)
    if response.status != 200:
        from repro.errors import HTTPError
        raise HTTPError(
            f"GET {url} returned {response.status} {response.reason}",
            status=response.status)
    return response.body


URLResolver = Callable[[ParsedURL], bytes]

_RESOLVERS: dict[str, URLResolver] = {
    "mem": _resolve_mem,
    "file": _resolve_file,
    "http": _resolve_http,
}


def register_resolver(scheme: str, resolver: URLResolver) -> None:
    """Install a resolver for a custom scheme (tests use this to
    inject fault modes)."""
    _RESOLVERS[scheme.lower()] = resolver


def resolve_url(base: str, ref: str) -> str:
    """Resolve *ref* against *base* (simplified RFC 3986).

    Absolute references (with a scheme) pass through; otherwise the
    reference replaces the last path segment of *base* (or the whole
    path when it starts with ``/``).  Used to resolve
    ``xsd:include/schemaLocation`` between hosted schema documents.
    """
    if _URL_RE.match(ref):
        return ref
    parsed = parse_url(base)
    if ref.startswith("/"):
        path = ref
    else:
        directory, _, _ = parsed.path.rpartition("/")
        path = f"{directory}/{ref}" if directory else ref
        # collapse ./ and ../ segments
        segments: list[str] = []
        for segment in path.split("/"):
            if segment == "..":
                if segments and segments[-1] not in ("", ".."):
                    segments.pop()
            elif segment != ".":
                segments.append(segment)
        path = "/".join(segments)
    if parsed.host is not None:
        port = f":{parsed.port}" if parsed.port is not None else ""
        if not path.startswith("/"):
            path = "/" + path
        return f"{parsed.scheme}://{parsed.host}{port}{path}"
    return f"{parsed.scheme}:{path}"


def fetch(url: str | ParsedURL, *,
          retry: RetryPolicy | None = None,
          stats: DiscoveryStats | None = None) -> bytes:
    """Fetch the document at *url* through the resolver chain.

    With *retry*, transient resolver failures (connection-level errors,
    5xx, generic :class:`DiscoveryError`) are retried under the policy;
    permanent ones (4xx, missing documents, malformed URLs) raise
    immediately.  *stats* counts attempts/retries/failures.
    """
    parsed = parse_url(url) if isinstance(url, str) else url
    try:
        resolver = _RESOLVERS[parsed.scheme]
    except KeyError:
        raise DiscoveryError(
            f"no resolver for scheme {parsed.scheme!r} "
            f"(known: {sorted(_RESOLVERS)})") from None
    if retry is None:
        if stats is not None:
            stats.count("fetch_attempts")
        try:
            return resolver(parsed)
        except Exception:
            if stats is not None:
                stats.count("fetch_failures")
            raise
    return call_with_retry(lambda: resolver(parsed), retry,
                           stats=stats)
