"""Minimal HTTP/1.0 server for hosting metadata documents.

Stands in for the Apache server of the paper's experimental setup.
Serves GET requests from a :class:`DocumentStore` on a loopback socket;
each connection is handled on a worker thread, one request per
connection (HTTP/1.0 close semantics), which is entirely adequate for
the discovery path it exists to exercise.

Usage::

    store = DocumentStore()
    store.put("/formats/hydrology.xsd", xsd_text)
    with MetadataHTTPServer(store) as server:
        url = server.url_for("/formats/hydrology.xsd")
        ... XMIT.load_url(url) ...
"""

from __future__ import annotations

import socket
import threading

from repro.obs import runtime as _obs
from repro.obs.exposition import (
    PROMETHEUS_CONTENT_TYPE, render_json, render_prometheus,
)
from repro.obs.metrics import HTTP_REQUESTS
from repro.obs.registry import REGISTRY

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 500: "Internal Server Error"}


class DocumentStore:
    """Thread-safe path -> document mapping."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._docs: dict[str, bytes] = {}
        self.hits = 0
        self.misses = 0

    def put(self, path: str, content: str | bytes,
            content_type: str = "text/xml") -> str:
        if not path.startswith("/"):
            path = "/" + path
        data = (content.encode("utf-8") if isinstance(content, str)
                else bytes(content))
        with self._lock:
            self._docs[path] = data
        # content_type accepted for interface fidelity; the store
        # serves everything as its stored bytes.
        del content_type
        return path

    def get(self, path: str) -> bytes | None:
        with self._lock:
            doc = self._docs.get(path)
            if doc is None:
                self.misses += 1
            else:
                self.hits += 1
            return doc

    def paths(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._docs))


class MetadataHTTPServer:
    """A loopback HTTP/1.0 server over a :class:`DocumentStore`.

    With ``metrics=True`` (the default) the server also exposes the
    process-wide telemetry registry: ``GET /metrics`` returns
    Prometheus text exposition and ``GET /metrics.json`` the same
    snapshot as JSON — the scrape endpoint for a running XMIT
    deployment.

    *snapshot_source* overrides where that snapshot comes from — e.g.
    :meth:`~repro.transport.sharded.ShardedBroadcastServer
    .metrics_snapshot` to expose a combined, worker-labeled view of a
    whole sharded fleet from one port.  It is called per scrape and
    must return the registry snapshot shape; on failure the scrape
    falls back to this process's registry.
    """

    def __init__(self, store: DocumentStore, *,
                 host: str = "127.0.0.1", port: int = 0,
                 metrics: bool = True,
                 snapshot_source=None) -> None:
        self.store = store
        self.metrics = metrics
        self.snapshot_source = snapshot_source
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR,
                                  1)
        self._listener.bind((host, port))
        self._listener.listen(16)
        self.host, self.port = self._listener.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve,
                                        name="metadata-http",
                                        daemon=True)
        self._thread.start()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._stop.is_set():
            return
        self._stop.set()
        # Unblock accept() with a dummy connection.
        try:
            with socket.create_connection((self.host, self.port),
                                          timeout=1):
                pass
        except OSError:
            pass
        self._thread.join(timeout=5)
        self._listener.close()

    def __enter__(self) -> "MetadataHTTPServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def url_for(self, path: str) -> str:
        if not path.startswith("/"):
            path = "/" + path
        return f"http://{self.host}:{self.port}{path}"

    # -- serving -------------------------------------------------------------

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return
            if self._stop.is_set():
                conn.close()
                return
            worker = threading.Thread(target=self._handle, args=(conn,),
                                      daemon=True)
            worker.start()

    def _handle(self, conn: socket.socket) -> None:
        try:
            conn.settimeout(10)
            request = self._read_request(conn)
            if request is None:
                self._respond(conn, 400, b"malformed request")
                return
            method, path = request
            if method != "GET":
                self._respond(conn, 405, b"only GET is supported")
                return
            if self.metrics and path in ("/metrics", "/metrics.json"):
                snapshot = None
                if self.snapshot_source is not None:
                    try:
                        snapshot = self.snapshot_source()
                    except Exception:
                        snapshot = None  # scrape must not 500
                if snapshot is None:
                    snapshot = REGISTRY.snapshot()
                if path == "/metrics":
                    body = render_prometheus(snapshot).encode("utf-8")
                    ctype = PROMETHEUS_CONTENT_TYPE
                else:
                    body = render_json(snapshot).encode("utf-8")
                    ctype = "application/json"
                self._respond(conn, 200, body, content_type=ctype)
                return
            doc = self.store.get(path)
            if doc is None:
                self._respond(conn, 404,
                              f"no document at {path}".encode())
                return
            self._respond(conn, 200, doc)
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _read_request(conn: socket.socket) -> tuple[str, str] | None:
        data = b""
        while b"\r\n\r\n" not in data:
            chunk = conn.recv(4096)
            if not chunk:
                break
            data += chunk
            if len(data) > 64 * 1024:
                return None
        line, _, _ = data.partition(b"\r\n")
        parts = line.decode("latin-1", errors="replace").split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/"):
            return None
        return parts[0], parts[1]

    @staticmethod
    def _respond(conn: socket.socket, status: int, body: bytes, *,
                 content_type: str = "text/xml") -> None:
        if _obs.enabled:
            HTTP_REQUESTS.labels(status=status).inc()
        reason = _REASONS.get(status, "Unknown")
        head = (f"HTTP/1.0 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        conn.sendall(head + body)
