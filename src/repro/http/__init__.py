"""Metadata hosting and retrieval substrate.

The paper hosted its XML format documents on an Apache HTTP server and
had XMIT fetch them by URL at run time ("exchanging metadata defined in
XML leverages (nearly) ubiquitous HTTP transport services").  This
package is the hermetic replacement:

* :mod:`repro.http.urls`   -- URL parsing plus a resolver chain over
  three schemes: ``mem:`` (in-process document registry, used by tests
  and benches so nothing touches the network), ``file:`` and ``http:``;
* :mod:`repro.http.server` -- a minimal HTTP/1.0 server over loopback
  sockets serving a document store;
* :mod:`repro.http.client` -- the matching GET client.
"""

from repro.http.retry import (
    DiscoveryStats,
    RetryPolicy,
    call_with_retry,
    default_retryable,
)
from repro.http.urls import (
    ParsedURL,
    URLResolver,
    fetch,
    parse_url,
    publish_document,
    register_resolver,
    unpublish_document,
)
from repro.http.server import DocumentStore, MetadataHTTPServer
from repro.http.client import http_get, HTTPResponse

__all__ = [
    "DiscoveryStats",
    "DocumentStore",
    "HTTPResponse",
    "MetadataHTTPServer",
    "ParsedURL",
    "RetryPolicy",
    "URLResolver",
    "call_with_retry",
    "default_retryable",
    "fetch",
    "http_get",
    "parse_url",
    "publish_document",
    "register_resolver",
    "unpublish_document",
]
