"""Retry policy, backoff schedule and discovery counters.

The paper's amortization argument (section 4.2) assumes discovery is a
rare, reliable step whose cost is paid once per format.  On a real
network it is neither: fetches hit dead servers, dropped connections
and transient 5xxs.  This module supplies the resilience layer the
discovery path (:func:`repro.http.urls.fetch`,
:class:`repro.core.registry.FormatRegistry`) is built on:

* :class:`RetryPolicy` — configurable attempt count, per-attempt
  timeout, exponential backoff with a cap, and *deterministic* jitter
  (seeded, so a policy's delay schedule is exactly reproducible in
  tests);
* :func:`call_with_retry` — drives a callable through the policy,
  distinguishing retryable faults (connection failures, 5xx) from
  permanent ones (4xx, malformed documents);
* :class:`DiscoveryStats` — thread-safe counters mirroring the style
  of :attr:`repro.pbio.format_server.FormatServer.stats`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import DiscoveryError, HTTPError, MetadataNotFoundError
from repro.obs import runtime as _obs
from repro.obs.metrics import DISCOVERY_EVENTS
from repro.obs.registry import AtomicCounter


def default_retryable(exc: BaseException) -> bool:
    """Is *exc* worth retrying?

    Connection-level failures and server errors (5xx) are transient;
    client errors (4xx), missing documents and anything raised *after*
    the bytes arrived (malformed XML, schema errors) are permanent.
    """
    if isinstance(exc, HTTPError):
        if exc.status is None:
            return True  # connection-level: refused, dropped, truncated
        return exc.status >= 500
    if isinstance(exc, MetadataNotFoundError):
        return False
    if isinstance(exc, (DiscoveryError, OSError)):
        return True
    return False


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter.

    ``delays()`` yields the sleep before each retry: attempt *i* waits
    ``base_delay * multiplier**i`` plus a jitter fraction drawn from
    ``random.Random(seed)``, clamped to ``max_delay`` and to be
    monotone non-decreasing.  Two equal policies produce identical
    schedules, which is what makes retry behaviour testable.
    """

    attempts: int = 3
    base_delay: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.1
    seed: int = 0
    timeout: float = 10.0
    sleep: Callable[[float], None] = field(default=time.sleep,
                                           repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("RetryPolicy.attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("RetryPolicy delays must be >= 0")
        if self.multiplier < 1.0:
            raise ValueError("RetryPolicy.multiplier must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("RetryPolicy.jitter must be in [0, 1]")

    def delays(self) -> tuple[float, ...]:
        """The backoff schedule: one delay per retry (attempts - 1)."""
        rng = random.Random(self.seed)
        schedule: list[float] = []
        previous = 0.0
        for i in range(self.attempts - 1):
            raw = self.base_delay * (self.multiplier ** i)
            jittered = raw * (1.0 + self.jitter * rng.random())
            delay = min(jittered, self.max_delay)
            delay = max(delay, previous)  # monotone non-decreasing
            schedule.append(delay)
            previous = delay
        return tuple(schedule)


class DiscoveryStats:
    """Thread-safe counters for the discovery path.

    ``fetch_attempts``/``retries``/``fetch_failures`` are incremented
    by :func:`call_with_retry`; the cache and fallback counters by
    :class:`repro.core.registry.FormatRegistry`.

    Each counter is an :class:`~repro.obs.registry.AtomicCounter`
    (exact under concurrent hammering); increments are mirrored into
    the process-wide registry as
    ``repro_discovery_events_total{event=...}``, so every instance's
    activity is centrally snapshottable while per-instance reads stay
    exact.  Attribute access (``stats.fetch_attempts``) returns plain
    ints, as before.
    """

    _COUNTERS = ("fetch_attempts", "retries", "fetch_failures",
                 "cache_hits", "cache_misses", "negative_hits",
                 "fallbacks", "compiles", "deferred_formats",
                 "lazy_compiles")

    #: process-wide mirror series, one per counter, shared by every
    #: instance (N registries sum into one global total)
    _MIRROR = {name: DISCOVERY_EVENTS.labels(event=name)
               for name in _COUNTERS}

    def __init__(self) -> None:
        self._counters = {name: AtomicCounter()
                          for name in self._COUNTERS}

    def count(self, name: str, n: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is None:
            raise AttributeError(f"unknown discovery counter {name!r}")
        counter.add(n)
        if _obs.enabled:
            self._MIRROR[name].inc(n)

    def __getattr__(self, name: str) -> int:
        try:
            return self.__dict__["_counters"][name].value
        except KeyError:
            raise AttributeError(name) from None

    def snapshot(self) -> dict[str, int]:
        return {name: counter.value
                for name, counter in self._counters.items()}

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in
                          self.snapshot().items())
        return f"DiscoveryStats({inner})"


def call_with_retry(fn: Callable[[], object], policy: RetryPolicy, *,
                    stats: DiscoveryStats | None = None,
                    retryable: Callable[[BaseException], bool]
                    = default_retryable):
    """Call *fn* under *policy*; returns its result.

    Each invocation counts one ``fetch_attempts``.  A retryable failure
    sleeps the scheduled backoff and tries again; a non-retryable one
    (or an exhausted budget) counts a ``fetch_failures`` and re-raises.
    """
    delays = policy.delays()
    for attempt in range(policy.attempts):
        if stats is not None:
            stats.count("fetch_attempts")
        try:
            return fn()
        except Exception as exc:
            if attempt + 1 >= policy.attempts or not retryable(exc):
                if stats is not None:
                    stats.count("fetch_failures")
                raise
            if stats is not None:
                stats.count("retries")
            delay = delays[attempt]
            if delay > 0:
                policy.sleep(delay)
    raise AssertionError("unreachable")  # pragma: no cover
