"""repro — reproduction of "Open Metadata Formats: Efficient XML-Based
Communication for High Performance Computing" (Widener, Eisenhauer,
Schwan; HPDC 2001).

The package rebuilds the paper's whole stack from scratch:

* :mod:`repro.xmlcore`   -- XML 1.0 parser + DOM + serializer
* :mod:`repro.schema`    -- the XML Schema subset XMIT metadata uses
* :mod:`repro.pbio`      -- PBIO, the binary communication mechanism
* :mod:`repro.wire`      -- baseline codecs (XML / MPI / CDR / XDR)
* :mod:`repro.http`      -- metadata hosting + URL discovery
* :mod:`repro.transport` -- channels and format-negotiating connections
* :mod:`repro.core`      -- XMIT itself (the paper's contribution)
* :mod:`repro.hydrology` -- the Fig. 5 demonstration application
* :mod:`repro.bench`     -- the harness regenerating every figure

Quick start::

    from repro import XMIT, IOContext
    from repro.http import publish_document

    url = publish_document("fmt.xsd", '''
      <xsd:complexType xmlns:xsd="http://www.w3.org/2001/XMLSchema"
                       name="SimpleData">
        <xsd:element name="timestep" type="xsd:integer" />
        <xsd:element name="size" type="xsd:integer" />
        <xsd:element name="data" type="xsd:float" maxOccurs="*"
                     dimensionName="size" />
      </xsd:complexType>''')

    xmit = XMIT()
    xmit.load_url(url)
    ctx = IOContext()
    xmit.register_with_context(ctx, "SimpleData")
    wire = ctx.encode("SimpleData", {"timestep": 1, "data": [1.5, 2.5]})
    print(ctx.decode(wire).record)
"""

from repro.core.toolkit import XMIT
from repro.core.binding import BindingToken
from repro.pbio.context import IOContext
from repro.pbio.format import IOFormat
from repro.pbio.machine import (
    Architecture, NATIVE, SPARC_32, SPARC_V9, X86_32, X86_64,
)
from repro.transport.connection import Connection
from repro.errors import ReproError

__version__ = "1.0.0"

__all__ = [
    "Architecture",
    "BindingToken",
    "Connection",
    "IOContext",
    "IOFormat",
    "NATIVE",
    "ReproError",
    "SPARC_32",
    "SPARC_V9",
    "X86_32",
    "X86_64",
    "XMIT",
    "__version__",
]
