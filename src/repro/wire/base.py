"""Common interface for wire-format codecs.

Every codec encodes/decodes record dicts under a PBIO
:class:`~repro.pbio.format.IOFormat` — the shared metadata keeps the
Fig. 8 comparison honest.  Codecs are stateful per format (they may
compile plans up front, mirroring each real system's setup phase) and
register themselves in a name registry for the benchmark harness.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import WireFormatError
from repro.pbio.format import IOFormat

_REGISTRY: dict[str, type["WireCodec"]] = {}


class WireCodec(ABC):
    """One wire format bound to one message format."""

    #: registry key; subclasses set this.
    codec_name: str = ""

    def __init__(self, fmt: IOFormat) -> None:
        self.format = fmt

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.codec_name:
            _REGISTRY[cls.codec_name] = cls

    @abstractmethod
    def encode(self, record: dict) -> bytes:
        """Marshal *record* to this codec's wire representation."""

    @abstractmethod
    def decode(self, data: bytes) -> dict:
        """Unmarshal wire bytes back into a record dict."""

    def encoded_size(self, record: dict) -> int:
        """Wire size of *record* under this codec."""
        return len(self.encode(record))

    def roundtrip(self, record: dict) -> dict:
        return self.decode(self.encode(record))

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(format={self.format.name!r})")


def codec_by_name(name: str, fmt: IOFormat) -> WireCodec:
    """Instantiate the codec registered under *name* for *fmt*."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise WireFormatError(
            f"unknown wire codec {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(fmt)


def all_codecs() -> tuple[str, ...]:
    """Names of every registered codec."""
    return tuple(sorted(_REGISTRY))
