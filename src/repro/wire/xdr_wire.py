"""XDR (Sun RPC) codec.

External Data Representation, RFC 1014 — the canonical
*sender-makes-right* format the paper contrasts with PBIO's
receiver-makes-right design: every sender converts to big-endian
4-byte-aligned canonical form regardless of its own architecture, so
homogeneous little-endian pairs pay conversion twice.

Encoding rules implemented:

* every item occupies a multiple of 4 bytes (1/2-byte integers widen,
  opaque/string data is NUL-padded to 4);
* integers are big-endian two's complement; hyper (8-byte) likewise;
* strings and variable arrays are u32 length + payload (+ padding);
* fixed arrays are elements back-to-back (each padded to 4);
* structs are members in declaration order.
"""

from __future__ import annotations

import struct

from repro.errors import WireFormatError
from repro.pbio.fields import FieldList
from repro.pbio.types import FieldType
from repro.wire.base import WireCodec

_U32 = struct.Struct(">I")

#: XDR wire width for each (kind, native size): everything is 4 or 8.
def _xdr_width(kind: str, size: int) -> int:
    if kind == "float":
        return 4 if size == 4 else 8
    return 8 if size == 8 else 4


def _xdr_code(kind: str, width: int) -> str:
    if kind == "float":
        return "f" if width == 4 else "d"
    if kind in ("unsigned", "enumeration", "boolean", "char"):
        return "I" if width == 4 else "Q"
    return "i" if width == 4 else "q"


def _items(value) -> list:
    """Sequence (possibly a NumPy array) -> list; None -> empty."""
    if value is None:
        return []
    return value if isinstance(value, list) else list(value)


class XDRWireCodec(WireCodec):
    """RFC 1014 canonical big-endian encoding."""

    codec_name = "xdr"

    # -- encode -----------------------------------------------------------------

    def encode(self, record: dict) -> bytes:
        out = bytearray()
        self._marshal_struct(out, self.format.field_list, record)
        return bytes(out)

    def _marshal_struct(self, out: bytearray, field_list: FieldList,
                        record: dict) -> None:
        for field in field_list:
            ftype = field.field_type
            try:
                value = record[field.name]
            except KeyError:
                raise WireFormatError(
                    f"field {field.name!r} missing from record") from None
            self._marshal_value(out, field_list, ftype, field.size,
                                value, field.name)

    def _marshal_value(self, out: bytearray, field_list: FieldList,
                       ftype: FieldType, size: int, value,
                       name: str) -> None:
        if ftype.is_string or (ftype.kind == "char" and ftype.dims):
            self._marshal_opaque(
                out, ("" if value is None else str(value)).encode("utf-8"),
                variable=True)
            return
        if ftype.dynamic_dim is not None:
            items = _items(value)
            out.extend(_U32.pack(len(items)))
            for item in items:
                self._marshal_scalar(out, field_list, ftype, size, item,
                                     name)
            return
        if ftype.dims:
            items = list(value)
            if len(items) != ftype.static_element_count:
                raise WireFormatError(
                    f"{name}: expected {ftype.static_element_count} "
                    f"elements, got {len(items)}")
            for item in items:
                self._marshal_scalar(out, field_list, ftype, size, item,
                                     name)
            return
        self._marshal_scalar(out, field_list, ftype, size, value, name)

    def _marshal_scalar(self, out: bytearray, field_list: FieldList,
                        ftype: FieldType, size: int, value,
                        name: str) -> None:
        kind = ftype.kind
        if kind == "subformat":
            self._marshal_struct(out, field_list.subformat(ftype.base),
                                 value)
            return
        if kind == "enumeration" and isinstance(value, str):
            values = self.format.enums.get(name)
            if values is None or value not in values:
                raise WireFormatError(
                    f"{name}: unknown enum label {value!r}")
            value = values.index(value)
        elif kind == "char" and isinstance(value, str):
            if len(value) != 1:
                raise WireFormatError(f"{name}: char expects one character")
            value = ord(value)
        elif kind == "boolean":
            value = 1 if value else 0
        width = _xdr_width(kind, size)
        code = _xdr_code(kind, width)
        if code in ("f", "d"):
            value = float(value)
        try:
            out.extend(struct.pack(">" + code, value))
        except struct.error as exc:
            raise WireFormatError(
                f"{name}: cannot XDR-encode {value!r}: {exc}") from None

    @staticmethod
    def _marshal_opaque(out: bytearray, data: bytes, *,
                        variable: bool) -> None:
        if variable:
            out.extend(_U32.pack(len(data)))
        out.extend(data)
        pad = -len(data) % 4
        out.extend(b"\x00" * pad)

    # -- decode -----------------------------------------------------------------

    def decode(self, data: bytes) -> dict:
        reader = _XDRReader(data)
        return self._demarshal_struct(reader, self.format.field_list)

    def _demarshal_struct(self, reader: "_XDRReader",
                          field_list: FieldList) -> dict:
        record: dict = {}
        for field in field_list:
            ftype = field.field_type
            record[field.name] = self._demarshal_value(
                reader, field_list, ftype, field.size, field.name)
        return record

    def _demarshal_value(self, reader: "_XDRReader",
                         field_list: FieldList, ftype: FieldType,
                         size: int, name: str):
        if ftype.is_string or (ftype.kind == "char" and ftype.dims):
            return reader.read_opaque_variable().decode("utf-8")
        if ftype.dynamic_dim is not None:
            n = reader.read_u32()
            return [self._demarshal_scalar(reader, field_list, ftype,
                                           size, name)
                    for _ in range(n)]
        if ftype.dims:
            return [self._demarshal_scalar(reader, field_list, ftype,
                                           size, name)
                    for _ in range(ftype.static_element_count)]
        return self._demarshal_scalar(reader, field_list, ftype, size,
                                      name)

    def _demarshal_scalar(self, reader: "_XDRReader",
                          field_list: FieldList, ftype: FieldType,
                          size: int, name: str):
        kind = ftype.kind
        if kind == "subformat":
            return self._demarshal_struct(
                reader, field_list.subformat(ftype.base))
        width = _xdr_width(kind, size)
        value = reader.read_scalar(_xdr_code(kind, width), width)
        if kind == "char":
            return chr(value)
        if kind == "boolean":
            return bool(value)
        if kind == "enumeration":
            values = self.format.enums.get(name)
            if values is not None:
                if value >= len(values):
                    raise WireFormatError(
                        f"{name}: enum index {value} out of range")
                return values[value]
            return value
        if kind == "float":
            return float(value)
        return value


class _XDRReader:
    def __init__(self, data: bytes) -> None:
        self.data = data
        self.pos = 0

    def read_scalar(self, code: str, width: int):
        try:
            value = struct.unpack_from(">" + code, self.data, self.pos)[0]
        except struct.error as exc:
            raise WireFormatError(f"truncated XDR data: {exc}") from None
        self.pos += width
        return value

    def read_u32(self) -> int:
        return self.read_scalar("I", 4)

    def read_opaque_variable(self) -> bytes:
        n = self.read_u32()
        end = self.pos + n
        if end > len(self.data):
            raise WireFormatError("truncated XDR opaque data")
        raw = self.data[self.pos:end]
        self.pos = end + (-n % 4)
        return raw
