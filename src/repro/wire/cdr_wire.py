"""CORBA CDR (IIOP) codec.

Models the Common Data Representation that IIOP uses on the wire:

* a one-byte **byte-order flag** leads each encapsulation; the sender
  writes in its own order and the *reader makes right* (the paper's
  section 5 discussion of IIOP);
* every primitive is aligned to its natural size *within the
  encapsulation* (CDR's defining quirk: alignment is relative to the
  start of the message, maintained by inserting pad bytes);
* strings are a u32 length (including NUL) + bytes + NUL;
* sequences are a u32 count + aligned elements;
* structs are their members in order, no framing.

Marshaling is element-at-a-time with per-element alignment arithmetic
and value copies at both ends — IIOP "is not sufficient to allow such
message exchanges without copying of data at both sender and receiver",
which is why CORBA sits above PBIO but below XML in Fig. 8.
"""

from __future__ import annotations

import struct

from repro.errors import WireFormatError
from repro.pbio.fields import FieldList
from repro.pbio.format import IOFormat
from repro.pbio.types import FieldType
from repro.wire.base import WireCodec

_CODES = {
    ("integer", 1): "b", ("integer", 2): "h", ("integer", 4): "i",
    ("integer", 8): "q",
    ("unsigned", 1): "B", ("unsigned", 2): "H", ("unsigned", 4): "I",
    ("unsigned", 8): "Q",
    ("enumeration", 4): "I",
    ("float", 4): "f", ("float", 8): "d",
    ("boolean", 1): "B", ("char", 1): "B",
}


def _items(value) -> list:
    """Sequence (possibly a NumPy array) -> list; None -> empty."""
    if value is None:
        return []
    return value if isinstance(value, list) else list(value)


class CDRWireCodec(WireCodec):
    """CDR encapsulation with reader-makes-right byte order."""

    codec_name = "cdr"

    def __init__(self, fmt: IOFormat) -> None:
        super().__init__(fmt)
        self._bo = fmt.architecture.struct_byte_order_char
        self._big = fmt.architecture.byte_order == "big"

    # -- encode -----------------------------------------------------------------

    def encode(self, record: dict) -> bytes:
        out = bytearray()
        out.append(0 if self._big else 1)  # CDR: 1 = little-endian
        self._marshal_struct(out, self.format.field_list, record)
        return bytes(out)

    def _align(self, out: bytearray, size: int) -> None:
        # Alignment is relative to the encapsulation start (offset 0).
        pad = -len(out) % size
        if pad:
            out.extend(b"\x00" * pad)

    def _marshal_struct(self, out: bytearray, field_list: FieldList,
                        record: dict) -> None:
        for field in field_list:
            ftype = field.field_type
            try:
                value = record[field.name]
            except KeyError:
                raise WireFormatError(
                    f"field {field.name!r} missing from record") from None
            self._marshal_value(out, field_list, ftype, field.size,
                                value, field.name)

    def _marshal_value(self, out: bytearray, field_list: FieldList,
                       ftype: FieldType, size: int, value,
                       name: str) -> None:
        if ftype.is_string:
            self._marshal_string(out, value)
            return
        if ftype.kind == "char" and ftype.dims:
            text = value or ""
            self._marshal_string(out, text)
            return
        if ftype.dynamic_dim is not None:
            items = _items(value)
            self._align(out, 4)
            out.extend(struct.pack(self._bo + "I", len(items)))
            for item in items:
                self._marshal_scalar(out, field_list, ftype, size, item,
                                     name)
            return
        if ftype.dims:
            items = list(value)
            if len(items) != ftype.static_element_count:
                raise WireFormatError(
                    f"{name}: expected {ftype.static_element_count} "
                    f"elements, got {len(items)}")
            for item in items:
                self._marshal_scalar(out, field_list, ftype, size, item,
                                     name)
            return
        self._marshal_scalar(out, field_list, ftype, size, value, name)

    def _marshal_scalar(self, out: bytearray, field_list: FieldList,
                        ftype: FieldType, size: int, value,
                        name: str) -> None:
        if ftype.kind == "subformat":
            sub = field_list.subformat(ftype.base)
            self._marshal_struct(out, sub, value)
            return
        if ftype.kind == "enumeration":
            size = 4  # CDR enums are unsigned long
            if isinstance(value, str):
                values = self.format.enums.get(name)
                if values is None or value not in values:
                    raise WireFormatError(
                        f"{name}: unknown enum label {value!r}")
                value = values.index(value)
        code = self._code(ftype, size, name)
        if code in ("f", "d"):
            value = float(value)
        elif isinstance(value, str):
            if len(value) != 1:
                raise WireFormatError(
                    f"{name}: char expects one character")
            value = ord(value)
        elif isinstance(value, bool):
            value = int(value)
        self._align(out, size)
        out.extend(struct.pack(self._bo + code, value))

    def _marshal_string(self, out: bytearray, value) -> None:
        data = ("" if value is None else str(value)).encode("utf-8")
        self._align(out, 4)
        out.extend(struct.pack(self._bo + "I", len(data) + 1))
        out.extend(data)
        out.append(0)

    def _code(self, ftype: FieldType, size: int, name: str) -> str:
        try:
            return _CODES[(ftype.kind, size)]
        except KeyError:
            raise WireFormatError(
                f"{name}: no CDR representation for "
                f"{ftype.kind}/{size}") from None

    # -- decode -----------------------------------------------------------------

    def decode(self, data: bytes) -> dict:
        if not data:
            raise WireFormatError("empty CDR encapsulation")
        reader = _CDRReader(data, little=data[0] == 1)
        return self._demarshal_struct(reader, self.format.field_list)

    def _demarshal_struct(self, reader: "_CDRReader",
                          field_list: FieldList) -> dict:
        record: dict = {}
        for field in field_list:
            ftype = field.field_type
            record[field.name] = self._demarshal_value(
                reader, field_list, ftype, field.size, field.name)
        return record

    def _demarshal_value(self, reader: "_CDRReader",
                         field_list: FieldList, ftype: FieldType,
                         size: int, name: str):
        if ftype.is_string or (ftype.kind == "char" and ftype.dims):
            return reader.read_string()
        if ftype.dynamic_dim is not None:
            n = reader.read_u32()
            return [self._demarshal_scalar(reader, field_list, ftype,
                                           size, name)
                    for _ in range(n)]
        if ftype.dims:
            return [self._demarshal_scalar(reader, field_list, ftype,
                                           size, name)
                    for _ in range(ftype.static_element_count)]
        return self._demarshal_scalar(reader, field_list, ftype, size,
                                      name)

    def _demarshal_scalar(self, reader: "_CDRReader",
                          field_list: FieldList, ftype: FieldType,
                          size: int, name: str):
        if ftype.kind == "subformat":
            sub = field_list.subformat(ftype.base)
            return self._demarshal_struct(reader, sub)
        if ftype.kind == "enumeration":
            index = reader.read_scalar("I", 4)
            values = self.format.enums.get(name)
            if values is not None:
                if index >= len(values):
                    raise WireFormatError(
                        f"{name}: enum index {index} out of range")
                return values[index]
            return index
        code = self._code(ftype, size, name)
        value = reader.read_scalar(code, size)
        if ftype.kind == "char":
            return chr(value)
        if ftype.kind == "boolean":
            return bool(value)
        if code in ("f", "d"):
            return float(value)
        return value


class _CDRReader:
    """Reader-makes-right cursor over a CDR encapsulation."""

    def __init__(self, data: bytes, *, little: bool) -> None:
        self.data = data
        self.pos = 1  # skip byte-order flag
        self.bo = "<" if little else ">"

    def _align(self, size: int) -> None:
        self.pos += -self.pos % size

    def read_scalar(self, code: str, size: int):
        self._align(size)
        try:
            value = struct.unpack_from(self.bo + code, self.data,
                                       self.pos)[0]
        except struct.error as exc:
            raise WireFormatError(f"truncated CDR data: {exc}") from None
        self.pos += size
        return value

    def read_u32(self) -> int:
        return self.read_scalar("I", 4)

    def read_string(self) -> str:
        n = self.read_u32()
        if n == 0:
            return ""
        end = self.pos + n
        if end > len(self.data):
            raise WireFormatError("truncated CDR string")
        raw = self.data[self.pos:end - 1]  # trailing NUL excluded
        self.pos = end
        return raw.decode("utf-8")
