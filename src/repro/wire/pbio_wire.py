"""PBIO behind the common codec interface.

Delegates to the compiled PBIO encoder/decoder so the Fig. 8 harness
can sweep all mechanisms through one API.  The emitted bytes are the
PBIO record *body* plus header, exactly what
:class:`~repro.pbio.context.IOContext` puts on a transport.
"""

from __future__ import annotations

from repro.pbio.decode import decoder_for_format
from repro.pbio.encode import HEADER_LEN, encoder_for_format, parse_header
from repro.pbio.format import IOFormat
from repro.wire.base import WireCodec


class PBIOWireCodec(WireCodec):
    """Native-layout binary records with metadata by reference."""

    codec_name = "pbio"

    def __init__(self, fmt: IOFormat) -> None:
        super().__init__(fmt)
        self._encoder = encoder_for_format(fmt)
        self._decoder = decoder_for_format(fmt)
        self._big = fmt.architecture.byte_order == "big"

    def encode(self, record: dict) -> bytes:
        return self._encoder.encode_wire(record)

    def decode(self, data: bytes) -> dict:
        fid, body_len = parse_header(data)
        if fid != self.format.format_id:
            # A full receiver resolves foreign IDs via the format
            # server; the codec interface is bound to one format.
            from repro.errors import WireFormatError
            raise WireFormatError(
                f"record format id {fid} does not match bound format "
                f"{self.format.format_id}")
        body = memoryview(data)[HEADER_LEN:HEADER_LEN + body_len]
        return self._decoder.decode(body)
