"""Baseline wire-format codecs.

The paper's Fig. 8 compares send-side encode times of four binary
communication mechanisms — XML-as-wire-format, MPICH, CORBA (IIOP/CDR)
and PBIO — over message sizes from 100 bytes to 100 KB, and section 4.1
argues XML encode/decode costs sit 2-4 orders of magnitude above binary
mechanisms.  This package implements a codec per mechanism, each
reproducing the *algorithmic* cost structure that drove the published
curves:

* :class:`XMLWireCodec`  -- per-element ASCII conversion both ways and
  6-8x message expansion (text tags around every value);
* :class:`MPIWireCodec`  -- derived-datatype typemap walk with
  per-element copies (MPI_Pack semantics, native byte order);
* :class:`CDRWireCodec`  -- aligned CDR primitives, length-prefixed
  strings/sequences, reader-makes-right byte-order flag;
* :class:`XDRWireCodec`  -- 4-byte-unit big-endian XDR, sender always
  converts (Sun RPC);
* :class:`PBIOWireCodec` -- the PBIO encoder behind the common
  interface.

All codecs share one metadata source (a PBIO :class:`IOFormat`) and one
in-memory record representation (dicts), so measured differences are
attributable to the wire format alone.
"""

from repro.wire.base import WireCodec, codec_by_name, all_codecs
from repro.wire.xml_wire import XMLWireCodec
from repro.wire.mpi_wire import MPIWireCodec
from repro.wire.cdr_wire import CDRWireCodec
from repro.wire.xdr_wire import XDRWireCodec
from repro.wire.pbio_wire import PBIOWireCodec

__all__ = [
    "CDRWireCodec",
    "MPIWireCodec",
    "PBIOWireCodec",
    "WireCodec",
    "XDRWireCodec",
    "XMLWireCodec",
    "all_codecs",
    "codec_by_name",
]
