"""XML as a wire format.

This is the comparator the paper argues against (section 4.1, Fig. 1):
every record becomes an ASCII document with an element per field and an
element per array item::

    <SimpleData>
      <timestep>9999</timestep>
      <size>3355</size>
      <data>12.345</data>
      <data>12.345</data>
      ...
    </SimpleData>

Both directions pay per-element string conversion (binary -> decimal
text on send, text -> binary on receive), which is exactly the
"2 to 4 orders of magnitude" cost the paper cites from [12], plus the
6-8x ASCII expansion in transmitted bytes.

The codec is implemented on our own DOM/serializer/parser so its cost
profile is a genuine XML-processing cost, not an artifact of a foreign
library.
"""

from __future__ import annotations

from repro.errors import WireFormatError
from repro.pbio.fields import FieldList
from repro.pbio.format import IOFormat
from repro.pbio.types import FieldType
from repro.wire.base import WireCodec
from repro.xmlcore.builder import DocumentBuilder
from repro.xmlcore.dom import Element
from repro.xmlcore.parser import parse
from repro.xmlcore.serializer import serialize


def _items(value) -> list:
    """Sequence (possibly a NumPy array) -> list; None -> empty."""
    if value is None:
        return []
    return value if isinstance(value, list) else list(value)


class XMLWireCodec(WireCodec):
    """Records as ASCII XML documents."""

    codec_name = "xml"

    def __init__(self, fmt: IOFormat) -> None:
        super().__init__(fmt)
        self._field_types: dict[str, FieldType] = {
            f.name: f.field_type for f in fmt.field_list}

    # -- encode -----------------------------------------------------------------

    def encode(self, record: dict) -> bytes:
        builder = DocumentBuilder()
        with builder.element(self.format.name):
            self._encode_fields(builder, self.format.field_list, record)
        text = serialize(builder.document(namespaces=False),
                         xml_declaration=False)
        return text.encode("utf-8")

    def _encode_fields(self, builder: DocumentBuilder,
                       field_list: FieldList, record: dict) -> None:
        for field in field_list:
            ftype = field.field_type
            name = field.name
            try:
                value = record[name]
            except KeyError:
                raise WireFormatError(
                    f"field {name!r} missing from record") from None
            if ftype.kind == "subformat":
                sub = field_list.subformat(ftype.base)
                items = [value] if not ftype.dims else _items(value)
                for item in items:
                    with builder.element(name):
                        self._encode_fields(builder, sub, item)
            elif ftype.dims and ftype.kind != "char":
                for item in _items(value):
                    builder.leaf(name, self._to_text(ftype, item))
            else:
                if value is None:
                    builder.leaf(name)
                else:
                    builder.leaf(name, self._to_text(ftype, value))

    @staticmethod
    def _to_text(ftype: FieldType, value) -> str:
        # repr() for floats preserves round-trip precision, matching
        # what a careful 2001-era XML sender would emit.
        if ftype.kind == "float":
            return repr(float(value))
        if ftype.kind == "boolean":
            return "true" if value else "false"
        text = str(value)
        if ftype.kind in ("string", "char"):
            # A genuine limitation of XML as a wire format: control
            # characters have no XML 1.0 representation at all (not
            # even as character references).  Binary formats carry
            # them untouched; here they must be rejected.
            from repro.xmlcore.chars import is_xml_char
            for ch in text:
                if not is_xml_char(ch):
                    raise WireFormatError(
                        f"string value contains U+{ord(ch):04X}, "
                        "which XML 1.0 cannot represent")
        return text

    # -- decode -----------------------------------------------------------------

    def decode(self, data: bytes) -> dict:
        doc = parse(data.decode("utf-8"), namespaces=False)
        root = doc.root
        if root.tag != self.format.name:
            raise WireFormatError(
                f"expected <{self.format.name}> document, got "
                f"<{root.tag}>")
        return self._decode_fields(root, self.format.field_list)

    def _decode_fields(self, elem: Element,
                       field_list: FieldList) -> dict:
        groups: dict[str, list[Element]] = {}
        for child in elem:
            groups.setdefault(child.tag, []).append(child)
        record: dict = {}
        for field in field_list:
            ftype = field.field_type
            name = field.name
            occurrences = groups.get(name, [])
            if ftype.kind == "subformat":
                sub = field_list.subformat(ftype.base)
                items = [self._decode_fields(o, sub) for o in occurrences]
                record[name] = items if ftype.dims else \
                    (items[0] if items else {})
            elif ftype.dims and ftype.kind != "char":
                record[name] = [self._from_text(ftype, o.text)
                                for o in occurrences]
            else:
                if not occurrences:
                    record[name] = None
                else:
                    record[name] = self._from_text(
                        ftype, occurrences[0].text)
        return record

    @staticmethod
    def _from_text(ftype: FieldType, text: str):
        kind = ftype.kind
        try:
            if kind in ("integer", "unsigned", "enumeration"):
                return int(text)
            if kind == "float":
                return float(text)
            if kind == "boolean":
                return text.strip() in ("true", "1")
            return text
        except ValueError as exc:
            raise WireFormatError(
                f"cannot parse {text!r} as {kind}: {exc}") from None
