"""MPI-style pack/unpack codec.

Models how MPI(CH) of the paper's era marshaled user structures: the
application builds a **derived datatype** (``MPI_Type_struct``) whose
flattened *typemap* lists every ``(offset, basic type)`` pair, and
``MPI_Pack`` walks that typemap copying elements one block at a time
into a contiguous buffer.  No byte-order conversion happens on pack
(MPI assumes a homogeneous communicator or converts on receive); the
cost driver is the per-block datatype-walk and copy, which is why the
paper's reference [12] measured MPICH roughly 10x slower than PBIO for
~100-byte structures.

Dynamic content (strings, runtime-sized arrays) is where the model gets
clunky in real MPI too: such fields cannot live in a static typemap, so
they are packed after the fixed typemap walk with explicit
length-prefixed appends (the idiom MPI applications actually used).
"""

from __future__ import annotations

import struct

from repro.errors import WireFormatError
from repro.pbio.format import IOFormat
from repro.pbio.types import FieldType
from repro.wire.base import WireCodec

#: MPI basic type -> struct char (native-order pack, per MPI semantics).
_BASIC_CODES = {
    ("integer", 1): "b", ("integer", 2): "h", ("integer", 4): "i",
    ("integer", 8): "q",
    ("unsigned", 1): "B", ("unsigned", 2): "H", ("unsigned", 4): "I",
    ("unsigned", 8): "Q",
    ("enumeration", 1): "B", ("enumeration", 2): "H",
    ("enumeration", 4): "I", ("enumeration", 8): "Q",
    ("float", 4): "f", ("float", 8): "d",
    ("boolean", 1): "B", ("char", 1): "B",
}


def _items(value) -> list:
    """Sequence (possibly a NumPy array) -> list; None -> empty."""
    if value is None:
        return []
    return value if isinstance(value, list) else list(value)


class _TypemapEntry:
    """One block of the flattened derived datatype."""

    __slots__ = ("field_path", "code", "count", "packer", "kind",
                 "is_array")

    def __init__(self, field_path: tuple[str, ...], code: str,
                 count: int, byte_order: str, kind: str,
                 is_array: bool) -> None:
        self.field_path = field_path
        self.code = code
        self.count = count
        self.packer = struct.Struct(byte_order + code * count)
        self.kind = kind
        self.is_array = is_array


class MPIWireCodec(WireCodec):
    """Derived-datatype pack/unpack."""

    codec_name = "mpi"

    def __init__(self, fmt: IOFormat) -> None:
        super().__init__(fmt)
        self._bo = fmt.architecture.struct_byte_order_char
        self._count = struct.Struct(self._bo + "I")
        # "Type commit": flatten the structure into a typemap plus a
        # list of dynamic appendices.
        self._typemap: list[_TypemapEntry] = []
        self._dynamic: list[tuple[tuple[str, ...], FieldType, int]] = []
        self._flatten(fmt.field_list, ())

    def _flatten(self, field_list, path: tuple[str, ...]) -> None:
        for field in field_list:
            ftype = field.field_type
            fpath = path + (field.name,)
            if ftype.kind == "subformat":
                sub = field_list.subformat(ftype.base)
                if ftype.dims and ftype.dynamic_dim is None:
                    for i in range(ftype.static_element_count):
                        self._flatten(sub, fpath + (str(i),))
                elif ftype.dims:
                    self._dynamic.append((fpath, ftype,
                                          field.size))
                else:
                    self._flatten(sub, fpath)
            elif ftype.is_string or ftype.dynamic_dim is not None:
                self._dynamic.append((fpath, ftype, field.size))
            else:
                code = self._code(ftype, field.size)
                self._typemap.append(_TypemapEntry(
                    fpath, code, ftype.static_element_count, self._bo,
                    ftype.kind, bool(ftype.dims)))

    def _code(self, ftype: FieldType, size: int) -> str:
        try:
            return _BASIC_CODES[(ftype.kind, size)]
        except KeyError:
            raise WireFormatError(
                f"no MPI basic type for {ftype.kind}/{size}") from None

    # -- pack -------------------------------------------------------------------

    def encode(self, record: dict) -> bytes:
        out = bytearray()
        # MPI_Pack: walk the typemap, copying block by block.
        for entry in self._typemap:
            values = self._fetch(record, entry.field_path)
            if not entry.is_array:
                out.extend(entry.packer.pack(
                    self._coerce(values, entry.code)))
            else:
                if entry.kind == "char" and isinstance(values, str):
                    values = values.ljust(entry.count, "\x00")
                items = [self._coerce(v, entry.code) for v in values]
                if len(items) != entry.count:
                    raise WireFormatError(
                        f"{'.'.join(entry.field_path)}: expected "
                        f"{entry.count} elements, got {len(items)}")
                out.extend(entry.packer.pack(*items))
        for fpath, ftype, elem_size in self._dynamic:
            self._pack_dynamic(out, record, fpath, ftype, elem_size)
        return bytes(out)

    def _pack_dynamic(self, out: bytearray, record: dict,
                      fpath: tuple[str, ...], ftype: FieldType,
                      elem_size: int) -> None:
        value = self._fetch(record, fpath)
        if ftype.is_string or ftype.kind == "char":
            data = b"" if value is None else str(value).encode("utf-8")
            out.extend(self._count.pack(len(data)))
            out.extend(data)
            return
        if ftype.kind == "subformat":
            items = _items(value)
            out.extend(self._count.pack(len(items)))
            sub_codec = MPIWireCodec(_sub_format(self.format, ftype.base))
            for item in items:
                packed = sub_codec.encode(item)
                out.extend(self._count.pack(len(packed)))
                out.extend(packed)
            return
        items = _items(value)
        out.extend(self._count.pack(len(items)))
        code = self._code(ftype, elem_size)
        packer = struct.Struct(self._bo + code)
        for item in items:  # element-at-a-time, as MPI_Pack does
            out.extend(packer.pack(self._coerce(item, code)))

    @staticmethod
    def _coerce(value, code: str):
        if code in ("f", "d"):
            return float(value)
        if isinstance(value, str):
            if len(value) != 1:
                raise WireFormatError(
                    f"char value must be one character, got {value!r}")
            return ord(value)
        if isinstance(value, bool):
            return int(value)
        return int(value)

    @staticmethod
    def _fetch(record: dict, path: tuple[str, ...]):
        value = record
        for part in path:
            if part.isdigit() and isinstance(value, (list, tuple)):
                value = value[int(part)]
            else:
                try:
                    value = value[part]
                except (KeyError, TypeError):
                    raise WireFormatError(
                        f"field {'.'.join(path)!r} missing from record"
                    ) from None
        return value

    # -- unpack ------------------------------------------------------------------

    def decode(self, data: bytes) -> dict:
        record: dict = {}
        pos = 0
        for entry in self._typemap:
            values = entry.packer.unpack_from(data, pos)
            pos += entry.packer.size
            if entry.kind == "char":
                values = [chr(v) for v in values]
                if entry.is_array:
                    text = "".join(values)
                    values = [text.split("\x00", 1)[0]]
                    self._store_raw(record, entry.field_path, values[0])
                    continue
            elif entry.kind == "boolean":
                values = [bool(v) for v in values]
            elif entry.code in ("f", "d"):
                values = [float(v) for v in values]
            value = list(values) if entry.is_array else values[0]
            self._store_raw(record, entry.field_path, value)
        for fpath, ftype, elem_size in self._dynamic:
            pos = self._unpack_dynamic(data, pos, record, fpath, ftype,
                                       elem_size)
        return record

    def _unpack_dynamic(self, data: bytes, pos: int, record: dict,
                        fpath: tuple[str, ...], ftype: FieldType,
                        elem_size: int) -> int:
        (n,) = self._count.unpack_from(data, pos)
        pos += 4
        if ftype.is_string or ftype.kind == "char":
            value = data[pos:pos + n].decode("utf-8")
            pos += n
            self._store_raw(record, fpath, value)
            return pos
        if ftype.kind == "subformat":
            sub_codec = MPIWireCodec(_sub_format(self.format, ftype.base))
            items = []
            for _ in range(n):
                (blen,) = self._count.unpack_from(data, pos)
                pos += 4
                items.append(sub_codec.decode(data[pos:pos + blen]))
                pos += blen
            self._store_raw(record, fpath, items)
            return pos
        code = self._code(ftype, elem_size)
        unpacker = struct.Struct(self._bo + code)
        items = []
        for _ in range(n):
            items.append(unpacker.unpack_from(data, pos)[0])
            pos += unpacker.size
        if code in ("f", "d"):
            items = [float(x) for x in items]
        self._store_raw(record, fpath, items)
        return pos

    @staticmethod
    def _store_raw(record: dict, path: tuple[str, ...], value) -> None:
        target = record
        for i, part in enumerate(path[:-1]):
            nxt = path[i + 1]
            if part.isdigit():
                continue  # list levels created below
            if nxt.isdigit():
                lst = target.setdefault(part, [])
                idx = int(nxt)
                while len(lst) <= idx:
                    lst.append({})
                target = lst[idx]
            else:
                target = target.setdefault(part, {})
        last = path[-1]
        if not last.isdigit():
            target[last] = value


def _sub_format(fmt: IOFormat, sub_name: str) -> IOFormat:
    """Wrap a subformat's field list as a standalone IOFormat."""
    return IOFormat(sub_name, fmt.field_list.subformat(sub_name))
