"""Emit schema components back to XSD documents.

XMIT publishes formats by URL; this emitter produces the documents to
publish.  The output uses the paper's flattened style (element
declarations directly under ``complexType``, Fig. 2 / Fig. 4), with
``xsd:`` prefixed primitive references and the
``dimensionName``/``dimensionPlacement`` extension attributes for
length-field-linked dynamic arrays.
"""

from __future__ import annotations

from repro.schema.datatypes import XSD_NAMESPACE, is_primitive
from repro.schema.model import (
    ComplexType, ElementDecl, EnumerationType, FIXED, Schema, VARIABLE,
)
from repro.xmlcore.builder import DocumentBuilder
from repro.xmlcore.dom import Document

_PREFIX = "xsd"


def emit_schema(schema: Schema, *, names: list[str] | None = None) \
        -> Document:
    """Render *schema* (or the subset in *names*) as an XSD document.

    The result parses back through :func:`repro.schema.parser.parse_schema`
    into an equivalent component model (round-trip property covered by
    tests).
    """
    builder = DocumentBuilder()
    attrs = {f"xmlns:{_PREFIX}": XSD_NAMESPACE}
    if schema.target_namespace:
        attrs["targetNamespace"] = schema.target_namespace
    with builder.element(f"{_PREFIX}:schema", attrs):
        selected_enums = schema.enumerations
        selected_types = schema.complex_types
        if names is not None:
            selected_types = {n: schema.complex_type(n) for n in names}
            # include enumerations referenced by the selected types
            selected_enums = {
                decl.type_name: schema.enumerations[decl.type_name]
                for ct in selected_types.values()
                for decl in ct.elements
                if decl.type_name in schema.enumerations
            }
        for enum in selected_enums.values():
            _emit_enumeration(builder, enum)
        for ct in selected_types.values():
            _emit_complex_type(builder, ct)
    return builder.document()


def _emit_enumeration(builder: DocumentBuilder,
                      enum: EnumerationType) -> None:
    with builder.element(f"{_PREFIX}:simpleType", name=enum.name):
        base = (f"{_PREFIX}:{enum.base}" if is_primitive(enum.base)
                else enum.base)
        with builder.element(f"{_PREFIX}:restriction", base=base):
            for value in enum.values:
                builder.leaf(f"{_PREFIX}:enumeration", attrs={
                    "value": value})


def _emit_complex_type(builder: DocumentBuilder, ct: ComplexType) -> None:
    with builder.element(f"{_PREFIX}:complexType", name=ct.name):
        if ct.documentation:
            with builder.element(f"{_PREFIX}:annotation"):
                builder.leaf(f"{_PREFIX}:documentation", ct.documentation)
        for decl in ct.elements:
            builder.leaf(f"{_PREFIX}:element",
                         attrs=_element_attrs(decl))


def _element_attrs(decl: ElementDecl) -> dict[str, str]:
    type_ref = (f"{_PREFIX}:{decl.type_name}"
                if is_primitive(decl.type_name) else decl.type_name)
    attrs: dict[str, str] = {"name": decl.name, "type": type_ref}
    if decl.min_occurs != 1:
        attrs["minOccurs"] = str(decl.min_occurs)
    array = decl.array
    if array.kind == FIXED:
        attrs["maxOccurs"] = str(array.size)
    elif array.kind == VARIABLE:
        attrs["maxOccurs"] = "*"
        if array.length_field is not None:
            attrs["dimensionName"] = array.length_field
            attrs["dimensionPlacement"] = array.placement
    return attrs
