"""Parse XML Schema documents into the component model.

Accepts the document shapes used by the paper:

* top-level ``xsd:complexType`` elements whose children are directly
  ``xsd:element`` declarations (the flattened style of Figs. 2 and 4),
  or wrapped in ``xsd:sequence``/``xsd:all`` as standard XSD writes it;
* top-level ``xsd:simpleType`` with ``xsd:restriction`` +
  ``xsd:enumeration`` facets;
* an optional enclosing ``xsd:schema`` root with ``targetNamespace``;
* occurrence attributes: ``minOccurs``, ``maxOccurs`` (numeric, ``*``,
  ``unbounded``, or a sizing-field name), plus the paper's
  ``dimensionName``/``dimensionPlacement`` extension attributes;
* ``xsd:annotation/xsd:documentation`` captured onto components.

Type references may be prefixed (``xsd:string``) or bare; prefixes
resolving to any recognized XML Schema namespace select primitive
datatypes, anything else is treated as a user-defined type name.
"""

from __future__ import annotations

from repro.errors import SchemaParseError
from repro.schema.datatypes import XSD_NAMESPACE_ALIASES
from repro.schema.model import (
    ArraySpec, ComplexType, ElementDecl, EnumerationType, FIXED, Schema,
    SCALAR_SPEC, VARIABLE,
)
from repro.xmlcore.dom import Document, Element
from repro.xmlcore.parser import parse as parse_xml


def parse_schema_text(text: str, *, check: bool = True) -> Schema:
    """Parse schema source text into a validated :class:`Schema`."""
    return parse_schema(parse_xml(text), check=check)


def schema_locations(doc: Document) -> tuple[str, ...]:
    """``schemaLocation`` values of top-level ``xsd:include`` /
    ``xsd:import`` elements (resolution is the caller's job — it knows
    the document's base URL)."""
    root = doc.root
    if not (_is_xsd(root) and root.local_name == "schema"):
        return ()
    locations = []
    for child in root:
        if _is_xsd(child) and child.local_name in ("include", "import"):
            location = child.get("schemaLocation")
            if location:
                locations.append(location)
    return tuple(locations)


def parse_schema(doc: Document, *, check: bool = True) -> Schema:
    """Parse a schema :class:`Document` into a :class:`Schema`.

    ``check=False`` skips reference validation — used when the
    document's references resolve against included documents that the
    caller merges afterwards (see
    :meth:`repro.core.registry.FormatRegistry.load_url`)."""
    root = doc.root
    schema = Schema()
    if _is_xsd(root) and root.local_name == "schema":
        schema.target_namespace = root.get("targetNamespace")
        tops = list(root)
    elif _is_xsd(root) and root.local_name in ("complexType", "simpleType"):
        tops = [root]
    else:
        raise SchemaParseError(
            f"expected an XML Schema document, found root "
            f"<{root.tag}> in namespace {root.namespace!r}")

    for top in tops:
        if not _is_xsd(top):
            raise SchemaParseError(
                f"non-schema element <{top.tag}> at top level")
        if top.local_name == "complexType":
            schema.add(_parse_complex_type(top))
        elif top.local_name == "simpleType":
            schema.add(_parse_simple_type(top))
        elif top.local_name in ("annotation", "element", "import",
                                "include"):
            # Global element declarations and imports carry no format
            # information for XMIT; ignore them like the paper's
            # selective DOM traversal does.
            continue
        else:
            raise SchemaParseError(
                f"unsupported top-level schema component "
                f"<{top.local_name}>")
    if check:
        schema.check_references()
    return schema


def _is_xsd(elem: Element) -> bool:
    return elem.namespace in XSD_NAMESPACE_ALIASES


def _documentation(elem: Element) -> str | None:
    ann = elem.find("annotation")
    if ann is None:
        return None
    doc_elem = ann.find("documentation")
    return doc_elem.text_content().strip() if doc_elem is not None else None


def _parse_complex_type(elem: Element) -> ComplexType:
    name = elem.get("name")
    if not name:
        raise SchemaParseError("complexType requires a name attribute")
    decls: list[ElementDecl] = []
    containers = [elem]
    # Standard XSD nests element declarations under sequence/all; the
    # paper's examples put them directly under complexType.  Accept both.
    for child in elem:
        if child.local_name in ("sequence", "all"):
            containers.append(child)
    for container in containers:
        for child in container:
            if child.local_name == "element":
                decls.append(_parse_element_decl(child, name))
            elif child.local_name in ("annotation", "sequence", "all"):
                continue
            elif child.local_name == "attribute":
                raise SchemaParseError(
                    f"complexType {name!r}: XML attributes are not part "
                    "of the XMIT metadata model (fields are elements)")
            else:
                raise SchemaParseError(
                    f"complexType {name!r}: unsupported particle "
                    f"<{child.local_name}>")
    if not decls:
        raise SchemaParseError(f"complexType {name!r} declares no fields")
    return ComplexType(name=name, elements=tuple(decls),
                       documentation=_documentation(elem))


def _parse_element_decl(elem: Element, owner: str) -> ElementDecl:
    name = elem.get("name")
    if not name:
        raise SchemaParseError(
            f"element in complexType {owner!r} requires a name")
    type_attr = elem.get("type")
    if not type_attr:
        raise SchemaParseError(
            f"element {owner}.{name}: inline anonymous types are not "
            "supported; use a named type reference")
    type_name = _resolve_type_reference(elem, type_attr)

    min_occurs = _parse_min_occurs(elem, owner, name)
    array = _parse_array_spec(elem, owner, name)
    return ElementDecl(name=name, type_name=type_name, array=array,
                       min_occurs=min_occurs,
                       documentation=_documentation(elem))


def _resolve_type_reference(elem: Element, type_attr: str) -> str:
    """Strip a namespace prefix from a type QName.

    A prefix bound to an XML Schema namespace selects a primitive
    datatype; other prefixes (or none) yield a user-type name.
    """
    if ":" not in type_attr:
        return type_attr
    prefix, _, local = type_attr.partition(":")
    # Walk ancestor declarations for the prefix binding.
    node = elem
    while node is not None and isinstance(node, Element):
        if prefix in node.ns_declarations:
            return local  # bound prefix; URI checked below via ns pass
        node = node.parent if isinstance(node.parent, Element) else None
    # The namespace pass already validated element/attribute prefixes,
    # but `type` values are attribute *content*, so unresolved prefixes
    # surface here.
    raise SchemaParseError(
        f"type reference {type_attr!r} uses undeclared prefix {prefix!r}")


def _parse_min_occurs(elem: Element, owner: str, name: str) -> int:
    raw = elem.get("minOccurs")
    if raw is None:
        return 1
    try:
        value = int(raw)
    except ValueError:
        raise SchemaParseError(
            f"{owner}.{name}: minOccurs must be an integer, "
            f"got {raw!r}") from None
    if value < 0:
        raise SchemaParseError(
            f"{owner}.{name}: minOccurs cannot be negative")
    return value


def _parse_array_spec(elem: Element, owner: str, name: str) -> ArraySpec:
    max_occurs = elem.get("maxOccurs")
    dim_name = elem.get("dimensionName")
    placement = elem.get("dimensionPlacement", "before")

    if dim_name is not None:
        # Fig. 4 style: dimensionName names the sizing field; maxOccurs
        # (if present) must be a dynamic marker.
        if max_occurs not in (None, "*", "unbounded"):
            raise SchemaParseError(
                f"{owner}.{name}: dimensionName with fixed maxOccurs "
                f"{max_occurs!r} is contradictory")
        return ArraySpec(kind=VARIABLE, length_field=dim_name,
                         placement=placement)

    if max_occurs is None or max_occurs == "1":
        return SCALAR_SPEC
    if max_occurs in ("*", "unbounded"):
        return ArraySpec(kind=VARIABLE, placement=placement)
    try:
        size = int(max_occurs)
    except ValueError:
        # Section 3.1: a string value names an integer sizing field.
        return ArraySpec(kind=VARIABLE, length_field=max_occurs,
                         placement=placement)
    if size < 1:
        raise SchemaParseError(
            f"{owner}.{name}: maxOccurs must be positive, got {size}")
    return ArraySpec(kind=FIXED, size=size)


def _parse_simple_type(elem: Element) -> EnumerationType:
    name = elem.get("name")
    if not name:
        raise SchemaParseError("simpleType requires a name attribute")
    restriction = elem.find("restriction")
    if restriction is None:
        raise SchemaParseError(
            f"simpleType {name!r}: only restriction-based enumerations "
            "are supported")
    base_attr = restriction.get("base", "string")
    base = base_attr.partition(":")[2] if ":" in base_attr else base_attr
    values: list[str] = []
    for facet in restriction:
        if facet.local_name == "enumeration":
            value = facet.get("value")
            if value is None:
                raise SchemaParseError(
                    f"simpleType {name!r}: enumeration facet without "
                    "a value")
            values.append(value)
        elif facet.local_name == "annotation":
            continue
        else:
            raise SchemaParseError(
                f"simpleType {name!r}: unsupported facet "
                f"<{facet.local_name}>")
    return EnumerationType(name=name, values=tuple(values), base=base)
