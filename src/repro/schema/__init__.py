"""XML Schema subset used by XMIT metadata documents.

The paper defines message formats as XML Schema ``complexType``
declarations whose ``element`` children name fields, with the primitive
datatypes of the XML Schema specification (string, integer, float,
unsignedLong, ...), fixed and dynamic arrays expressed through
``maxOccurs``, and — in the Hydrology formats of Fig. 4 — the
``dimensionName``/``dimensionPlacement`` attributes that tie a dynamic
array's length to an integer field of the same record.

This package provides:

* :mod:`repro.schema.datatypes` -- the primitive type registry with
  lexical <-> value mapping and range checking,
* :mod:`repro.schema.model`     -- the schema component model,
* :mod:`repro.schema.parser`    -- XSD document -> :class:`Schema`,
* :mod:`repro.schema.validator` -- instance documents / record dicts
  against a :class:`ComplexType`,
* :mod:`repro.schema.emitter`   -- :class:`Schema` -> XSD document.
"""

from repro.schema.datatypes import XSD_NAMESPACE, Datatype, lookup_datatype
from repro.schema.model import (
    ArraySpec,
    ComplexType,
    ElementDecl,
    EnumerationType,
    FIXED,
    Schema,
    SCALAR,
    VARIABLE,
)
from repro.schema.parser import parse_schema, parse_schema_text
from repro.schema.validator import validate_instance, validate_record
from repro.schema.emitter import emit_schema

__all__ = [
    "ArraySpec",
    "ComplexType",
    "Datatype",
    "ElementDecl",
    "EnumerationType",
    "FIXED",
    "SCALAR",
    "Schema",
    "VARIABLE",
    "XSD_NAMESPACE",
    "emit_schema",
    "lookup_datatype",
    "parse_schema",
    "parse_schema_text",
    "validate_instance",
    "validate_record",
]
