"""Validate message instances against a schema.

Two instance representations are supported:

* **record dicts** -- the in-memory form XMIT marshals: a mapping of
  field name to Python value (scalars, lists for arrays, nested dicts
  for composed types).  This is what :func:`validate_record` checks and
  what PBIO encodes.
* **XML instance documents** -- the form the paper argues *against*
  using on the wire (Fig. 1) but which schema-checking tools consume;
  :func:`validate_instance` checks a DOM element and
  :func:`load_instance` converts it into a record dict.

The paper notes that "schema-checking tools may be applied to live
messages received from other parties to determine which of several
structure definitions a message best matches" -- that is
:func:`match_format`.
"""

from __future__ import annotations

from repro.errors import SchemaValidationError
from repro.schema.datatypes import Datatype
from repro.schema.model import (
    ComplexType, ElementDecl, EnumerationType, FIXED, Schema, VARIABLE,
)
from repro.xmlcore.dom import Element


# ---------------------------------------------------------------------------
# record dicts
# ---------------------------------------------------------------------------

def validate_record(schema: Schema, type_name: str, record: dict) -> dict:
    """Validate *record* against complexType *type_name*.

    Returns a canonicalized copy (lexical round trip applied to every
    scalar, list lengths cross-checked against sizing fields).  Raises
    :class:`SchemaValidationError` on the first violation.
    """
    ct = schema.complex_type(type_name)
    return _validate_record(schema, ct, record, path=type_name)


def _validate_record(schema: Schema, ct: ComplexType, record: dict,
                     path: str) -> dict:
    if not isinstance(record, dict):
        raise SchemaValidationError(
            f"{path}: record must be a mapping, got "
            f"{type(record).__name__}")
    unknown = set(record) - set(ct.field_names())
    if unknown:
        raise SchemaValidationError(
            f"{path}: unknown fields {sorted(unknown)}")
    out: dict = {}
    for decl in ct.elements:
        fpath = f"{path}.{decl.name}"
        if decl.name not in record:
            if decl.optional:
                continue
            if decl.array.kind == VARIABLE and decl.min_occurs == 0:
                out[decl.name] = []
                continue
            raise SchemaValidationError(f"{fpath}: required field missing")
        out[decl.name] = _validate_value(schema, decl, record[decl.name],
                                         fpath)
    _check_length_fields(ct, out, path)
    return out


def _validate_value(schema: Schema, decl: ElementDecl, value: object,
                    path: str) -> object:
    resolved = schema.resolve(decl.type_name)
    if decl.array.is_array:
        if isinstance(value, (str, bytes)) or not hasattr(value,
                                                          "__len__"):
            raise SchemaValidationError(
                f"{path}: array field requires a sequence, got "
                f"{type(value).__name__}")
        items = list(value)
        if decl.array.kind == FIXED and len(items) != decl.array.size:
            raise SchemaValidationError(
                f"{path}: fixed array expects {decl.array.size} "
                f"elements, got {len(items)}")
        return [_validate_scalar(schema, resolved, item, f"{path}[{i}]")
                for i, item in enumerate(items)]
    return _validate_scalar(schema, resolved, value, path)


def _validate_scalar(schema: Schema, resolved, value: object,
                     path: str) -> object:
    if isinstance(resolved, ComplexType):
        return _validate_record(schema, resolved, value, path)
    if isinstance(resolved, EnumerationType):
        if not isinstance(value, str):
            raise SchemaValidationError(
                f"{path}: enumeration value must be str, got "
                f"{type(value).__name__}")
        if value not in resolved.values:
            raise SchemaValidationError(
                f"{path}: {value!r} is not one of "
                f"{list(resolved.values)}")
        return value
    assert isinstance(resolved, Datatype)
    try:
        return resolved.check(value)
    except SchemaValidationError as exc:
        raise SchemaValidationError(f"{path}: {exc}") from None


def _check_length_fields(ct: ComplexType, record: dict, path: str) -> None:
    for decl in ct.elements:
        lf = decl.array.length_field
        if lf is None or decl.name not in record:
            continue
        declared = record.get(lf)
        actual = len(record[decl.name])
        if declared != actual:
            raise SchemaValidationError(
                f"{path}.{decl.name}: length field {lf!r} says "
                f"{declared} but array has {actual} elements")


# ---------------------------------------------------------------------------
# XML instance documents
# ---------------------------------------------------------------------------

def validate_instance(schema: Schema, type_name: str,
                      elem: Element) -> None:
    """Validate an XML instance element against a complexType."""
    load_instance(schema, type_name, elem)


def load_instance(schema: Schema, type_name: str, elem: Element) -> dict:
    """Convert a validated XML instance element into a record dict."""
    ct = schema.complex_type(type_name)
    return _load_instance(schema, ct, elem, path=type_name)


def _load_instance(schema: Schema, ct: ComplexType, elem: Element,
                   path: str) -> dict:
    children = list(elem)
    by_name: dict[str, list[Element]] = {}
    for child in children:
        by_name.setdefault(child.local_name, []).append(child)
    unknown = set(by_name) - set(ct.field_names())
    if unknown:
        raise SchemaValidationError(
            f"{path}: unexpected child elements {sorted(unknown)}")

    record: dict = {}
    for decl in ct.elements:
        fpath = f"{path}.{decl.name}"
        occurrences = by_name.get(decl.name, [])
        if decl.array.is_array:
            if decl.array.kind == FIXED and \
                    len(occurrences) != decl.array.size:
                raise SchemaValidationError(
                    f"{fpath}: expected {decl.array.size} occurrences, "
                    f"found {len(occurrences)}")
            if len(occurrences) < decl.min_occurs:
                raise SchemaValidationError(
                    f"{fpath}: at least {decl.min_occurs} occurrences "
                    f"required, found {len(occurrences)}")
            record[decl.name] = [
                _load_scalar(schema, decl, occ, f"{fpath}[{i}]")
                for i, occ in enumerate(occurrences)]
        else:
            if not occurrences:
                if decl.optional:
                    continue
                raise SchemaValidationError(
                    f"{fpath}: required element missing")
            if len(occurrences) > 1:
                raise SchemaValidationError(
                    f"{fpath}: scalar field appears "
                    f"{len(occurrences)} times")
            record[decl.name] = _load_scalar(schema, decl, occurrences[0],
                                             fpath)
    _check_length_fields(ct, record, path)
    return record


def _load_scalar(schema: Schema, decl: ElementDecl, elem: Element,
                 path: str) -> object:
    resolved = schema.resolve(decl.type_name)
    if isinstance(resolved, ComplexType):
        return _load_instance(schema, resolved, elem, path)
    text = elem.text_content()
    if isinstance(resolved, EnumerationType):
        value = text.strip()
        if value not in resolved.values:
            raise SchemaValidationError(
                f"{path}: {value!r} is not one of "
                f"{list(resolved.values)}")
        return value
    assert isinstance(resolved, Datatype)
    try:
        return resolved.parse(text)
    except SchemaValidationError as exc:
        raise SchemaValidationError(f"{path}: {exc}") from None


def dump_instance(schema: Schema, type_name: str, record: dict) \
        -> Element:
    """Render a validated record dict as an XML instance element.

    The inverse of :func:`load_instance`:
    ``load_instance(s, t, dump_instance(s, t, r)) == r`` for any
    record that validates (property-tested).  This is the document
    form the paper's Fig. 1 shows — and argues against putting on the
    wire.
    """
    from repro.xmlcore.builder import DocumentBuilder
    record = validate_record(schema, type_name, record)
    builder = DocumentBuilder()
    _dump_record(schema, builder, type_name,
                 schema.complex_type(type_name), record)
    return builder.document(namespaces=False).root


def _dump_record(schema: Schema, builder, tag: str,
                 ct: ComplexType, record: dict) -> None:
    with builder.element(tag):
        for decl in ct.elements:
            if decl.name not in record:
                continue
            value = record[decl.name]
            items = value if decl.array.is_array else [value]
            for item in items:
                _dump_value(schema, builder, decl, item)


def _dump_value(schema: Schema, builder, decl: ElementDecl,
                value) -> None:
    resolved = schema.resolve(decl.type_name)
    if isinstance(resolved, ComplexType):
        _dump_record(schema, builder, decl.name, resolved, value)
    elif isinstance(resolved, EnumerationType):
        builder.leaf(decl.name, value)
    else:
        assert isinstance(resolved, Datatype)
        builder.leaf(decl.name, resolved.format(value))


def match_format(schema: Schema, elem: Element) -> str | None:
    """Return the name of the complexType that *elem* validates
    against, or None.

    Implements the paper's observation that schema checking can be
    applied to live messages "to determine which of several structure
    definitions a message best matches".  Candidates whose name equals
    the element tag are tried first; ties broken by declaration order.
    """
    names = list(schema.complex_types)
    names.sort(key=lambda n: (n != elem.local_name,))
    for name in names:
        try:
            load_instance(schema, name, elem)
            return name
        except SchemaValidationError:
            continue
    return None
