"""Schema component model.

A :class:`Schema` is a named collection of :class:`ComplexType` message
formats (plus :class:`EnumerationType` simple types).  A
:class:`ComplexType` is an ordered list of :class:`ElementDecl` fields;
each field is either a primitive datatype, an enumeration, or a
reference to another complex type, and may carry an :class:`ArraySpec`.

Array specifications follow the paper (section 3.1 and Fig. 4):

* ``maxOccurs="12"``        -- fixed-size array of 12 elements;
* ``maxOccurs="*"``         -- dynamically allocated array whose length
  travels with the message (we also accept the standard
  ``"unbounded"`` spelling);
* ``maxOccurs="size"``      -- dynamic array sized at run time by the
  integer field named ``size`` of the same record;
* ``dimensionName="size"`` (+ optional ``dimensionPlacement``) -- the
  Fig. 4 spelling of the same length-field linkage.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SchemaParseError, SchemaTypeError
from repro.schema.datatypes import Datatype, is_primitive, lookup_datatype

# ArraySpec kinds
SCALAR = "scalar"
FIXED = "fixed"
VARIABLE = "variable"


@dataclass(frozen=True)
class ArraySpec:
    """Occurrence specification for a field.

    ``kind`` is one of :data:`SCALAR`, :data:`FIXED`, :data:`VARIABLE`.
    For FIXED, ``size`` is the element count.  For VARIABLE,
    ``length_field`` names the sizing integer field when the schema
    links one (otherwise the length is self-describing on the wire) and
    ``placement`` records whether the length field appears ``"before"``
    or ``"after"`` the array in the record (Fig. 4 uses ``before``).
    """

    kind: str = SCALAR
    size: int | None = None
    length_field: str | None = None
    placement: str = "before"

    @property
    def is_array(self) -> bool:
        return self.kind != SCALAR

    def __post_init__(self) -> None:
        if self.kind not in (SCALAR, FIXED, VARIABLE):
            raise SchemaParseError(f"invalid array kind {self.kind!r}")
        if self.kind == FIXED and (self.size is None or self.size < 1):
            raise SchemaParseError(
                f"fixed array requires a positive size, got {self.size!r}")
        if self.placement not in ("before", "after"):
            raise SchemaParseError(
                f"dimensionPlacement must be 'before' or 'after', "
                f"got {self.placement!r}")


SCALAR_SPEC = ArraySpec()


@dataclass(frozen=True)
class ElementDecl:
    """One field of a message format.

    ``type_name`` is the local name of either a primitive datatype, an
    enumeration simple type, or another complex type in the same
    schema.  Resolution to one of those happens against a
    :class:`Schema` via :meth:`Schema.resolve`.
    """

    name: str
    type_name: str
    array: ArraySpec = SCALAR_SPEC
    min_occurs: int = 1
    documentation: str | None = None

    @property
    def optional(self) -> bool:
        return self.min_occurs == 0 and not self.array.is_array


@dataclass(frozen=True)
class EnumerationType:
    """A ``simpleType`` restricting ``string`` to enumerated values."""

    name: str
    values: tuple[str, ...]
    base: str = "string"

    def __post_init__(self) -> None:
        if not self.values:
            raise SchemaParseError(
                f"enumeration {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise SchemaParseError(
                f"enumeration {self.name!r} has duplicate values")

    def index_of(self, value: str) -> int:
        try:
            return self.values.index(value)
        except ValueError:
            raise SchemaTypeError(
                f"{value!r} is not one of enumeration {self.name!r}: "
                f"{list(self.values)}") from None


@dataclass(frozen=True)
class ComplexType:
    """A message format: an ordered sequence of fields."""

    name: str
    elements: tuple[ElementDecl, ...]
    documentation: str | None = None

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for decl in self.elements:
            if decl.name in seen:
                raise SchemaParseError(
                    f"duplicate field {decl.name!r} in complexType "
                    f"{self.name!r}")
            seen.add(decl.name)

    def field_names(self) -> tuple[str, ...]:
        return tuple(decl.name for decl in self.elements)

    def element(self, name: str) -> ElementDecl:
        for decl in self.elements:
            if decl.name == name:
                return decl
        raise SchemaTypeError(
            f"complexType {self.name!r} has no field {name!r}")


@dataclass
class Schema:
    """A collection of named types parsed from one or more documents."""

    target_namespace: str | None = None
    complex_types: dict[str, ComplexType] = field(default_factory=dict)
    enumerations: dict[str, EnumerationType] = field(default_factory=dict)

    def add(self, component: ComplexType | EnumerationType) -> None:
        table, kind = ((self.complex_types, "complexType")
                       if isinstance(component, ComplexType)
                       else (self.enumerations, "simpleType"))
        if component.name in self.complex_types or \
                component.name in self.enumerations or \
                is_primitive(component.name):
            raise SchemaParseError(
                f"{kind} {component.name!r} collides with an existing type")
        table[component.name] = component

    def merge(self, other: "Schema") -> None:
        """Add every component of *other* (used when XMIT loads several
        schema documents into one registry)."""
        for ct in other.complex_types.values():
            self.add(ct)
        for en in other.enumerations.values():
            self.add(en)

    def complex_type(self, name: str) -> ComplexType:
        try:
            return self.complex_types[name]
        except KeyError:
            raise SchemaTypeError(
                f"unknown complexType {name!r}; known: "
                f"{sorted(self.complex_types)}") from None

    def resolve(self, type_name: str) \
            -> Datatype | EnumerationType | ComplexType:
        """Resolve a field's type name to its component.

        Lookup order follows the paper's layering: user-defined complex
        types and enumerations shadow nothing because primitive names
        are reserved at :meth:`add` time.
        """
        if type_name in self.complex_types:
            return self.complex_types[type_name]
        if type_name in self.enumerations:
            return self.enumerations[type_name]
        return lookup_datatype(type_name)

    def check_references(self) -> None:
        """Verify every field type and length-field reference resolves.

        Raises :class:`SchemaTypeError` on dangling references, self-
        recursive types (a type containing itself by value, which has
        no finite binary layout), and length fields that are not
        integers declared in the same record.
        """
        for ct in self.complex_types.values():
            for decl in ct.elements:
                resolved = self.resolve(decl.type_name)
                if isinstance(resolved, ComplexType):
                    self._check_no_cycle(ct.name, resolved, (ct.name,))
                lf = decl.array.length_field
                if lf is not None:
                    sizing = ct.element(lf)  # raises if absent
                    sizing_type = self.resolve(sizing.type_name)
                    if not isinstance(sizing_type, Datatype) or \
                            sizing_type.kind not in ("integer", "unsigned"):
                        raise SchemaTypeError(
                            f"length field {lf!r} of "
                            f"{ct.name}.{decl.name} must be an integer "
                            f"type, is {sizing.type_name!r}")
                    if sizing.array.is_array:
                        raise SchemaTypeError(
                            f"length field {lf!r} of "
                            f"{ct.name}.{decl.name} cannot be an array")

    def _check_no_cycle(self, root: str, ct: ComplexType,
                        path: tuple[str, ...]) -> None:
        if ct.name in path:
            raise SchemaTypeError(
                f"recursive value-type cycle: {' -> '.join(path)} -> "
                f"{ct.name}")
        for decl in ct.elements:
            resolved = self.resolve(decl.type_name)
            if isinstance(resolved, ComplexType):
                self._check_no_cycle(root, resolved, path + (ct.name,))
