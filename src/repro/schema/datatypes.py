"""Primitive XML Schema datatypes.

Implements the subset of XML Schema Part 2 datatypes the paper's
metadata uses: the string/boolean/floating types and the full integer
derivation ladder (byte .. unsignedLong).  Each datatype knows how to

* ``parse``  a lexical form into a Python value (range-checked), and
* ``format`` a Python value back into canonical lexical form.

These are the types that XMIT maps onto native BCM types; the mapping
itself lives with each target (:mod:`repro.core.targets`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

from repro.errors import SchemaTypeError, SchemaValidationError

XSD_NAMESPACE = "http://www.w3.org/2001/XMLSchema"
#: Older drafts the 2001-era documents in the paper may reference.
XSD_NAMESPACE_ALIASES = (
    XSD_NAMESPACE,
    "http://www.w3.org/1999/XMLSchema",
    "http://www.w3.org/2000/10/XMLSchema",
)


@dataclass(frozen=True)
class Datatype:
    """A primitive schema datatype.

    ``python_type`` is the canonical in-memory representation;
    ``parse``/``format`` convert lexical forms.  ``kind`` is the coarse
    class XMIT targets dispatch on: ``"integer"``, ``"unsigned"``,
    ``"float"``, ``"string"``, ``"boolean"``.
    """

    name: str
    kind: str
    python_type: type
    parse: Callable[[str], object]
    format: Callable[[object], str]
    bits: int | None = None  # natural width hint for binary targets

    def check(self, value: object) -> object:
        """Validate *value* against this type's value space; return it
        (possibly canonicalized, e.g. bool(1) for boolean)."""
        return self.parse(self.format(value))


def _strip(lexical: str) -> str:
    # whiteSpace facet is 'collapse' for every numeric/boolean type.
    return lexical.strip()


def _int_parser(name: str, lo: int | None, hi: int | None):
    def parse(lexical: str) -> int:
        text = _strip(str(lexical))
        try:
            value = int(text, 10)
        except ValueError:
            raise SchemaValidationError(
                f"{text!r} is not a valid {name}") from None
        if (lo is not None and value < lo) or (hi is not None and value > hi):
            raise SchemaValidationError(
                f"{value} out of range for {name}")
        return value
    return parse


def _int_formatter(name: str):
    def fmt(value: object) -> str:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaValidationError(
                f"{name} value must be int, got {type(value).__name__}")
        return str(value)
    return fmt


def _float_parser(name: str):
    def parse(lexical: str) -> float:
        text = _strip(str(lexical))
        if text == "INF":
            return math.inf
        if text == "-INF":
            return -math.inf
        if text == "NaN":
            return math.nan
        try:
            return float(text)
        except ValueError:
            raise SchemaValidationError(
                f"{text!r} is not a valid {name}") from None
    return parse


def _float_formatter(value: object) -> str:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SchemaValidationError(
            f"float value expected, got {type(value).__name__}")
    value = float(value)
    if math.isinf(value):
        return "INF" if value > 0 else "-INF"
    if math.isnan(value):
        return "NaN"
    return repr(value)


def _parse_boolean(lexical: str) -> bool:
    text = _strip(str(lexical))
    if text in ("true", "1"):
        return True
    if text in ("false", "0"):
        return False
    raise SchemaValidationError(f"{text!r} is not a valid boolean")


def _format_boolean(value: object) -> str:
    if not isinstance(value, bool):
        raise SchemaValidationError(
            f"boolean value expected, got {type(value).__name__}")
    return "true" if value else "false"


def _parse_string(lexical: str) -> str:
    if not isinstance(lexical, str):
        raise SchemaValidationError(
            f"string value expected, got {type(lexical).__name__}")
    return lexical


def _format_string(value: object) -> str:
    if not isinstance(value, str):
        raise SchemaValidationError(
            f"string value expected, got {type(value).__name__}")
    return value


def _make(name: str, kind: str, python_type: type, parse, fmt,
          bits: int | None = None) -> Datatype:
    return Datatype(name=name, kind=kind, python_type=python_type,
                    parse=parse, format=fmt, bits=bits)


def _bounded_int(name: str, bits: int, signed: bool) -> Datatype:
    if signed:
        lo, hi = -(1 << (bits - 1)), (1 << (bits - 1)) - 1
        kind = "integer"
    else:
        lo, hi = 0, (1 << bits) - 1
        kind = "unsigned"
    return _make(name, kind, int,
                 _int_parser(name, lo, hi), _int_formatter(name), bits)


_DATATYPES: dict[str, Datatype] = {}


def _register(dt: Datatype) -> Datatype:
    _DATATYPES[dt.name] = dt
    return dt


STRING = _register(_make("string", "string", str,
                         _parse_string, _format_string))
BOOLEAN = _register(_make("boolean", "boolean", bool,
                          _parse_boolean, _format_boolean, 8))
FLOAT = _register(_make("float", "float", float,
                        _float_parser("float"), _float_formatter, 32))
DOUBLE = _register(_make("double", "float", float,
                         _float_parser("double"), _float_formatter, 64))
DECIMAL = _register(_make("decimal", "float", float,
                          _float_parser("decimal"), _float_formatter, 64))

#: ``integer`` is unbounded in XML Schema; binary targets treat it as a
#: native int (the paper maps C ``int`` fields onto ``xsd:integer``).
INTEGER = _register(_make(
    "integer", "integer", int,
    _int_parser("integer", None, None), _int_formatter("integer"), 32))

LONG = _register(_bounded_int("long", 64, signed=True))
INT = _register(_bounded_int("int", 32, signed=True))
SHORT = _register(_bounded_int("short", 16, signed=True))
BYTE = _register(_bounded_int("byte", 8, signed=True))
UNSIGNED_LONG = _register(_bounded_int("unsignedLong", 64, signed=False))
UNSIGNED_INT = _register(_bounded_int("unsignedInt", 32, signed=False))
UNSIGNED_SHORT = _register(_bounded_int("unsignedShort", 16, signed=False))
UNSIGNED_BYTE = _register(_bounded_int("unsignedByte", 8, signed=False))

NON_NEGATIVE_INTEGER = _register(_make(
    "nonNegativeInteger", "unsigned", int,
    _int_parser("nonNegativeInteger", 0, None),
    _int_formatter("nonNegativeInteger"), 32))
POSITIVE_INTEGER = _register(_make(
    "positiveInteger", "unsigned", int,
    _int_parser("positiveInteger", 1, None),
    _int_formatter("positiveInteger"), 32))


def lookup_datatype(name: str) -> Datatype:
    """Return the primitive datatype called *name* (local name, no
    prefix).  Raises :class:`SchemaTypeError` for unknown names."""
    try:
        return _DATATYPES[name]
    except KeyError:
        raise SchemaTypeError(
            f"unknown XML Schema datatype {name!r}; supported: "
            f"{sorted(_DATATYPES)}") from None


def is_primitive(name: str) -> bool:
    """True if *name* names a supported primitive datatype."""
    return name in _DATATYPES


def all_datatypes() -> dict[str, Datatype]:
    """A copy of the primitive-type registry (name -> Datatype)."""
    return dict(_DATATYPES)
