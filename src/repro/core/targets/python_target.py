"""Runtime Python message-class generation.

The paper's most dynamic target generated Java *bytecode* through a
third-party generator and loaded it straight into the running VM, "so
that the classes are immediately available to the running system."  The
Python analog: classes built at run time with ``type()`` and installed
into a loadable module namespace — immediately importable, no source
files, no compiler.

Generated classes have:

* ``__slots__`` for the format's fields (composition of message formats
  expressed as object composition, as the paper describes for Java);
* keyword constructor with per-field defaults;
* ``to_record()`` / ``from_record()`` bridging to the dict form the
  BCMs marshal;
* ``FORMAT_NAME`` / ``FIELD_NAMES`` class metadata.
"""

from __future__ import annotations

import sys
import types

from repro.core.binding import BindingToken
from repro.core.ir import FieldIR, IRSet
from repro.core.targets.base import MetadataTarget

#: synthetic module that generated classes are installed into, making
#: them importable (``from repro.generated import SimpleData``).
GENERATED_MODULE = "repro.generated"


def _generated_module() -> types.ModuleType:
    module = sys.modules.get(GENERATED_MODULE)
    if module is None:
        module = types.ModuleType(
            GENERATED_MODULE,
            "Message classes generated at run time by XMIT.")
        sys.modules[GENERATED_MODULE] = module
    return module


def _default_for(ir: IRSet, field: FieldIR):
    if field.is_array and field.array.fixed_size is None:
        return list
    tref = field.type
    if tref.is_nested or tref.kind == "string":
        return lambda: None
    if field.is_array:
        n = field.array.fixed_size
        if tref.is_enum:
            first = ir.enum(tref.enum_name).values[0]
            return lambda: [first] * n
        zero = {"integer": 0, "unsigned": 0, "float": 0.0,
                "boolean": False}[tref.kind]
        return lambda: [zero] * n
    if tref.is_enum:
        first = ir.enum(tref.enum_name).values[0]
        return lambda: first
    value = {"integer": 0, "unsigned": 0, "float": 0.0,
             "boolean": False}[tref.kind]
    return lambda: value


class PythonClassTarget(MetadataTarget):
    """IR -> runtime-generated Python classes."""

    target_name = "python"

    def generate(self, ir: IRSet, format_name: str,
                 **options) -> BindingToken:
        self._reject_unknown_options(options, {"install"},
                                     self.target_name)
        install = options.get("install", True)
        nested_classes: dict[str, type] = {}
        for dep in ir.dependencies(format_name):
            nested_classes[dep] = self._build_class(ir, dep,
                                                    nested_classes)
        cls = self._build_class(ir, format_name, nested_classes)
        if install:
            module = _generated_module()
            for name, nested in nested_classes.items():
                setattr(module, name, nested)
            setattr(module, format_name, cls)
        return BindingToken(format_name=format_name,
                            target=self.target_name, artifact=cls,
                            details={"nested": nested_classes,
                                     "module": GENERATED_MODULE})

    def _build_class(self, ir: IRSet, format_name: str,
                     nested_classes: dict[str, type]) -> type:
        fmt = ir.format(format_name)
        field_names = fmt.field_names()
        defaults = {f.name: _default_for(ir, f) for f in fmt.fields}
        nested_by_field = {
            f.name: nested_classes[f.type.format_name]
            for f in fmt.fields if f.type.is_nested}
        array_fields = frozenset(f.name for f in fmt.fields
                                 if f.is_array)
        # sizing-field linkage: to_record keeps length fields in sync
        # with their arrays, as the PBIO encoder expects.
        length_links = {f.name: f.array.length_field
                        for f in fmt.fields
                        if f.is_array and f.array.length_field}

        def __init__(self, **kwargs):
            unknown = set(kwargs) - set(field_names)
            if unknown:
                raise TypeError(
                    f"{format_name} has no fields {sorted(unknown)}")
            for name in field_names:
                if name in kwargs:
                    setattr(self, name, kwargs[name])
                else:
                    setattr(self, name, defaults[name]())
            for array_name, length_name in length_links.items():
                if length_name not in kwargs:
                    value = getattr(self, array_name)
                    if value is not None:
                        setattr(self, length_name, len(value))

        def to_record(self) -> dict:
            """Convert to the dict form the BCMs marshal."""
            record = {}
            for name in field_names:
                value = getattr(self, name)
                if name in nested_by_field and value is not None:
                    if name in array_fields:
                        value = [v.to_record() if hasattr(v, "to_record")
                                 else v for v in value]
                    elif hasattr(value, "to_record"):
                        value = value.to_record()
                record[name] = value
            for array_name, length_name in length_links.items():
                value = record.get(array_name)
                if value is not None:
                    record[length_name] = len(value)
            return record

        def from_record(cls, record: dict):
            """Build an instance from a decoded record dict."""
            kwargs = {}
            for name in field_names:
                if name not in record:
                    continue
                value = record[name]
                nested_cls = nested_by_field.get(name)
                if nested_cls is not None and value is not None:
                    if name in array_fields:
                        value = [nested_cls.from_record(v) for v in value]
                    else:
                        value = nested_cls.from_record(value)
                kwargs[name] = value
            return cls(**kwargs)

        def __repr__(self):
            parts = ", ".join(f"{n}={getattr(self, n)!r}"
                              for n in field_names)
            return f"{format_name}({parts})"

        def __eq__(self, other):
            # classes are generated per bind; compare by format
            # identity + values so instances from separate generate()
            # calls (e.g. nested vs standalone Point) still match.
            if getattr(other, "FORMAT_NAME", None) != format_name or \
                    getattr(other, "FIELD_NAMES", None) != field_names:
                return NotImplemented
            return all(getattr(self, n) == getattr(other, n)
                       for n in field_names)

        namespace = {
            "__slots__": tuple(field_names),
            "__init__": __init__,
            "__repr__": __repr__,
            "__eq__": __eq__,
            "__hash__": None,
            "__module__": GENERATED_MODULE,
            "__doc__": (fmt.documentation or
                        f"Message class generated by XMIT for format "
                        f"{format_name!r}."),
            "to_record": to_record,
            "from_record": classmethod(from_record),
            "FORMAT_NAME": format_name,
            "FIELD_NAMES": field_names,
        }
        return type(format_name, (), namespace)
