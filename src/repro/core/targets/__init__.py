"""Native-metadata generation targets.

Section 3.2 of the paper: XMIT "generates 'native' metadata in several
different forms" and "is designed in a modular fashion so that support
for additional BCMs is easily added."  Each target consumes the IR and
produces a binding artifact; the registry makes targets addressable by
name from :meth:`XMIT.bind`.
"""

from repro.core.targets.base import (
    MetadataTarget,
    available_targets,
    target_by_name,
)
from repro.core.targets.pbio_target import PBIOTarget
from repro.core.targets.python_target import PythonClassTarget
from repro.core.targets.java_target import JavaSourceTarget
from repro.core.targets.c_target import CSourceTarget
from repro.core.targets.cpp_target import CppSourceTarget
from repro.core.targets.idl_target import IDLSourceTarget

__all__ = [
    "CSourceTarget",
    "CppSourceTarget",
    "IDLSourceTarget",
    "JavaSourceTarget",
    "MetadataTarget",
    "PBIOTarget",
    "PythonClassTarget",
    "available_targets",
    "target_by_name",
]
