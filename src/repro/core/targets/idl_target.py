"""CORBA IDL source generation.

Section 5 of the paper contrasts XMIT with IDL-based systems and notes
"we know of no commonly-used specification for automated exchange of
IDL definitions".  XMIT can close that loop from its side: any
discovered format can be rendered as IDL for consumption by CORBA
tooling.  One ``struct`` per format, enums as IDL ``enum``, dynamic
arrays as ``sequence<T>``, strings as ``string``.
"""

from __future__ import annotations

from repro.core.binding import BindingToken
from repro.core.ir import FieldIR, IRSet, TypeRef
from repro.core.targets.base import MetadataTarget

#: IR (kind, bits) -> IDL base type.
_IDL_TYPES: dict[tuple[str, int | None], str] = {
    ("integer", 8): "octet",
    ("integer", 16): "short",
    ("integer", 32): "long",
    ("integer", None): "long",
    ("integer", 64): "long long",
    ("unsigned", 8): "octet",
    ("unsigned", 16): "unsigned short",
    ("unsigned", 32): "unsigned long",
    ("unsigned", None): "unsigned long",
    ("unsigned", 64): "unsigned long long",
    ("float", 32): "float",
    ("float", 64): "double",
    ("boolean", 8): "boolean",
    ("string", None): "string",
}


class IDLSourceTarget(MetadataTarget):
    """IR -> OMG IDL source text."""

    target_name = "idl"

    def generate(self, ir: IRSet, format_name: str,
                 **options) -> BindingToken:
        self._reject_unknown_options(options, {"module"},
                                     self.target_name)
        module = options.get("module", "xmit")
        lines: list[str] = [f"module {module} {{", ""]
        for enum_name in self._referenced_enums(ir, format_name):
            enum = ir.enum(enum_name)
            labels = ", ".join(enum.values)
            lines.append(f"    enum {enum.name} {{ {labels} }};")
            lines.append("")
        for dep in ir.dependencies(format_name) + (format_name,):
            lines.extend(self._struct(ir, dep))
            lines.append("")
        lines.append("};")
        source = "\n".join(lines) + "\n"
        return BindingToken(format_name=format_name,
                            target=self.target_name, artifact=source,
                            details={"module": module})

    def _referenced_enums(self, ir: IRSet,
                          format_name: str) -> tuple[str, ...]:
        names: list[str] = []
        for fmt_name in ir.dependencies(format_name) + (format_name,):
            for field in ir.format(fmt_name).fields:
                if field.type.is_enum and \
                        field.type.enum_name not in names:
                    names.append(field.type.enum_name)
        return tuple(names)

    def _struct(self, ir: IRSet, format_name: str) -> list[str]:
        fmt = ir.format(format_name)
        lines = [f"    struct {format_name} {{"]
        for field in fmt.fields:
            lines.append(f"        {self._member(ir, field)};")
        lines.append("    };")
        return lines

    def _member(self, ir: IRSet, field: FieldIR) -> str:
        base = self._base(field.type)
        if field.array is None:
            return f"{base} {field.name}"
        if field.array.fixed_size is not None:
            return f"{base} {field.name}[{field.array.fixed_size}]"
        # dynamic arrays (length-linked or self-sized) are sequences;
        # IDL sequences carry their own length, so the sizing field
        # remains as data (mirroring the wire format's record shape)
        return f"sequence<{base}> {field.name}"

    @staticmethod
    def _base(tref: TypeRef) -> str:
        if tref.is_nested:
            return tref.format_name
        if tref.is_enum:
            return tref.enum_name
        return _IDL_TYPES[(tref.kind, tref.bits)]
