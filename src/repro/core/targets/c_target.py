"""C source generation: struct definitions + IOField lists.

Produces exactly the artifact pair of the paper's Fig. 2 — a C
``typedef struct`` and the matching ``IOField`` initializer — for a
chosen architecture.  Useful for wiring legacy C components into an
XMIT-managed format set, and as a human-auditable view of what the
layout engine computed.
"""

from __future__ import annotations

from repro.core.binding import BindingToken
from repro.core.ir import FieldIR, IRSet, TypeRef
from repro.core.targets.base import MetadataTarget
from repro.core.targets.pbio_target import PBIOTarget
from repro.pbio.machine import Architecture, NATIVE


def _c_base_type(ir: IRSet, tref: TypeRef, arch: Architecture) -> str:
    if tref.is_nested:
        return tref.format_name
    if tref.is_enum:
        return f"enum {tref.enum_name}"
    kind, bits = tref.kind, tref.bits
    if kind == "string":
        return "char*"
    if kind == "boolean":
        return "unsigned char"
    if kind == "float":
        return "double" if bits == 64 else "float"
    if bits is None:
        bits = arch.sizeof("int") * 8
    names = {8: "char", 16: "short", 32: "int", 64: "long long"}
    if bits == 64 and arch.sizeof("long") == 8:
        names[64] = "long"
    base = names[bits]
    if kind == "unsigned":
        return f"unsigned {base}"
    return base


class CSourceTarget(MetadataTarget):
    """IR -> C struct + IOField source text."""

    target_name = "c"

    def generate(self, ir: IRSet, format_name: str,
                 **options) -> BindingToken:
        self._reject_unknown_options(options, {"architecture"},
                                     self.target_name)
        arch: Architecture = options.get("architecture", NATIVE)
        parts: list[str] = []
        for enum_name in self._referenced_enums(ir, format_name):
            parts.append(self._enum_source(ir, enum_name))
        for dep in ir.dependencies(format_name):
            parts.append(self._struct_source(ir, dep, arch))
        parts.append(self._struct_source(ir, format_name, arch))
        parts.append(self._iofield_source(ir, format_name, arch))
        source = "\n".join(parts)
        return BindingToken(format_name=format_name,
                            target=self.target_name, artifact=source,
                            details={"architecture": arch})

    def _referenced_enums(self, ir: IRSet,
                          format_name: str) -> tuple[str, ...]:
        names: list[str] = []
        for fmt_name in ir.dependencies(format_name) + (format_name,):
            for field in ir.format(fmt_name).fields:
                if field.type.is_enum and \
                        field.type.enum_name not in names:
                    names.append(field.type.enum_name)
        return tuple(names)

    def _enum_source(self, ir: IRSet, enum_name: str) -> str:
        enum = ir.enum(enum_name)
        labels = ", ".join(enum.values)
        return f"enum {enum.name} {{ {labels} }};\n"

    def _struct_source(self, ir: IRSet, format_name: str,
                       arch: Architecture) -> str:
        fmt = ir.format(format_name)
        lines = [f"typedef struct _{format_name} {{"]
        for field in fmt.fields:
            lines.append(f"    {self._declarator(ir, field, arch)};")
        lines.append(f"}} {format_name};")
        return "\n".join(lines) + "\n"

    def _declarator(self, ir: IRSet, field: FieldIR,
                    arch: Architecture) -> str:
        base = _c_base_type(ir, field.type, arch)
        if field.array is None:
            return f"{base} {field.name}"
        if field.array.fixed_size is not None:
            return f"{base} {field.name}[{field.array.fixed_size}]"
        # dynamic array: a pointer plus (for linked arrays) the sizing
        # field already declared elsewhere in the struct.
        return f"{base} *{field.name}"

    def _iofield_source(self, ir: IRSet, format_name: str,
                        arch: Architecture) -> str:
        token = PBIOTarget().generate(ir, format_name,
                                      architecture=arch)
        io_format = token.artifact
        lines = [f"IOField {format_name}Fields[] = {{"]
        for field in io_format.field_list:
            lines.append(
                f'    {{ "{field.name}", "{field.type}", '
                f"{field.size}, {field.offset} }},")
        lines.append("    { NULL, NULL, 0, 0 },")
        lines.append("};")
        return "\n".join(lines) + "\n"
