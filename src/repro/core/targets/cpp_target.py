"""C++ message-class generation.

The paper's conclusion: "In the future, we intend to explore ...
generation of language-level message object representations in both
C++ and Java."  This target delivers the C++ side: one value class per
format with members, accessors, and a std-library-era representation
(``std::string`` for strings, ``std::vector<T>`` for dynamic arrays)
so the classes own their storage, unlike the raw-pointer C structs.
"""

from __future__ import annotations

from repro.core.binding import BindingToken
from repro.core.ir import FieldIR, IRSet, TypeRef
from repro.core.targets.base import MetadataTarget

_CPP_TYPES: dict[tuple[str, int | None], str] = {
    ("integer", 8): "int8_t",
    ("integer", 16): "int16_t",
    ("integer", 32): "int32_t",
    ("integer", None): "int",
    ("integer", 64): "int64_t",
    ("unsigned", 8): "uint8_t",
    ("unsigned", 16): "uint16_t",
    ("unsigned", 32): "uint32_t",
    ("unsigned", None): "unsigned int",
    ("unsigned", 64): "uint64_t",
    ("float", 32): "float",
    ("float", 64): "double",
    ("boolean", 8): "bool",
    ("string", None): "std::string",
}


class CppSourceTarget(MetadataTarget):
    """IR -> C++ header text (one compilation unit, dependencies
    included in order)."""

    target_name = "cpp"

    def generate(self, ir: IRSet, format_name: str,
                 **options) -> BindingToken:
        self._reject_unknown_options(options, {"namespace"},
                                     self.target_name)
        namespace = options.get("namespace", "xmit")
        guard = f"XMIT_GENERATED_{format_name.upper()}_HPP"
        lines = [
            f"#ifndef {guard}",
            f"#define {guard}",
            "",
            "#include <array>",
            "#include <cstdint>",
            "#include <string>",
            "#include <vector>",
            "",
            f"namespace {namespace} {{",
            "",
        ]
        for enum_name in self._referenced_enums(ir, format_name):
            enum = ir.enum(enum_name)
            labels = ", ".join(enum.values)
            lines.append(f"enum class {enum.name} {{ {labels} }};")
            lines.append("")
        for dep in ir.dependencies(format_name) + (format_name,):
            lines.extend(self._class(ir, dep))
            lines.append("")
        lines.extend([f"}} // namespace {namespace}", "",
                      f"#endif // {guard}"])
        source = "\n".join(lines) + "\n"
        return BindingToken(format_name=format_name,
                            target=self.target_name, artifact=source,
                            details={"namespace": namespace})

    def _referenced_enums(self, ir: IRSet,
                          format_name: str) -> tuple[str, ...]:
        names: list[str] = []
        for fmt_name in ir.dependencies(format_name) + (format_name,):
            for field in ir.format(fmt_name).fields:
                if field.type.is_enum and \
                        field.type.enum_name not in names:
                    names.append(field.type.enum_name)
        return tuple(names)

    def _class(self, ir: IRSet, format_name: str) -> list[str]:
        fmt = ir.format(format_name)
        lines = [f"class {format_name} {{", "public:"]
        for field in fmt.fields:
            member = self._member_type(ir, field)
            lines.append(f"    {member} {field.name}{{}};")
        lines.append("")
        lines.append(f"    static constexpr const char* format_name = "
                     f"\"{format_name}\";")
        lines.append("};")
        return lines

    def _member_type(self, ir: IRSet, field: FieldIR) -> str:
        base = self._base(field.type)
        if field.array is None:
            return base
        if field.array.fixed_size is not None:
            return f"std::array<{base}, {field.array.fixed_size}>"
        return f"std::vector<{base}>"

    @staticmethod
    def _base(tref: TypeRef) -> str:
        if tref.is_nested:
            return tref.format_name
        if tref.is_enum:
            return tref.enum_name
        return _CPP_TYPES[(tref.kind, tref.bits)]
