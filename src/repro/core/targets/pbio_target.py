"""The PBIO metadata target.

Converts IR formats into PBIO :class:`~repro.pbio.format.IOFormat`
objects: IR type references become PBIO type strings and element sizes,
nested formats become subformats (laid out first, dependency order),
and the layout engine supplies the structure offsets and padding for
the requested architecture — "the mapping also includes information
such as structure offsets and data type sizes for BCMs requiring them"
(section 3.1).

This is the artifact the paper's evaluation times: binding a format
through this target plus registering the result is the "XMIT
registration time" of Figs. 3 and 6.
"""

from __future__ import annotations

from repro.core.binding import BindingToken
from repro.core.ir import FieldIR, FormatIR, IRSet, TypeRef
from repro.core.targets.base import MetadataTarget
from repro.errors import TargetError
from repro.pbio.fields import FieldList
from repro.pbio.layout import compute_layout
from repro.pbio.machine import Architecture, NATIVE
from repro.pbio.format import IOFormat


class PBIOTarget(MetadataTarget):
    """IR -> IOFormat (field lists laid out for an architecture)."""

    target_name = "pbio"

    def generate(self, ir: IRSet, format_name: str,
                 **options) -> BindingToken:
        self._reject_unknown_options(options, {"architecture"},
                                     self.target_name)
        arch: Architecture = options.get("architecture", NATIVE)
        fmt_ir = ir.format(format_name)

        # Lay out nested formats first (dependencies before dependents).
        subformats: dict[str, FieldList] = {}
        sub_alignments: dict[str, int] = {}
        for dep_name in ir.dependencies(format_name):
            dep_layout = compute_layout(
                self._specs(ir, ir.format(dep_name), arch),
                architecture=arch, subformats=subformats,
                sub_alignments=sub_alignments)
            subformats[dep_name] = dep_layout.field_list
            sub_alignments[dep_name] = dep_layout.alignment

        layout = compute_layout(self._specs(ir, fmt_ir, arch),
                                architecture=arch,
                                subformats=subformats,
                                sub_alignments=sub_alignments)
        enums = {f.name: ir.enum(f.type.enum_name).values
                 for f in fmt_ir.fields if f.type.is_enum}
        io_format = IOFormat(format_name, layout.field_list, enums)
        return BindingToken(
            format_name=format_name, target=self.target_name,
            artifact=io_format,
            details={"architecture": arch,
                     "alignment": layout.alignment,
                     "subformats": dict(subformats)})

    # -- IR -> field specs -------------------------------------------------------

    def _specs(self, ir: IRSet, fmt_ir: FormatIR,
               arch: Architecture) -> list[tuple[str, str, int] |
                                           tuple[str, str]]:
        specs: list = []
        for field in fmt_ir.fields:
            base, size = self._base_type(ir, field.type, arch)
            dims = self._dims(field)
            type_string = base + dims
            if size is None:
                specs.append((field.name, type_string))
            else:
                specs.append((field.name, type_string, size))
        return specs

    def _base_type(self, ir: IRSet, tref: TypeRef,
                   arch: Architecture) -> tuple[str, int | None]:
        if tref.is_nested:
            return tref.format_name, None
        if tref.is_enum:
            return "enumeration", arch.sizeof("int")
        kind = tref.kind
        if kind == "string":
            return "string", None
        if kind == "boolean":
            return "boolean", 1
        if kind == "float":
            return ("double", 8) if tref.bits == 64 else ("float", 4)
        size = arch.int_size_for(tref.bits)
        if kind == "unsigned":
            return "unsigned integer", size
        if kind == "integer":
            return "integer", size
        raise TargetError(f"unmappable IR type {tref.describe()}")

    @staticmethod
    def _dims(field: FieldIR) -> str:
        if field.array is None:
            return ""
        if field.array.fixed_size is not None:
            return f"[{field.array.fixed_size}]"
        if field.array.length_field is not None:
            return f"[{field.array.length_field}]"
        return "[*]"
