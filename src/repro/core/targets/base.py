"""Target interface and registry."""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.binding import BindingToken
from repro.core.ir import IRSet
from repro.errors import TargetError

_REGISTRY: dict[str, type["MetadataTarget"]] = {}


class MetadataTarget(ABC):
    """Generates one flavor of native metadata from the IR."""

    #: registry key; subclasses set this.
    target_name: str = ""

    def __init_subclass__(cls, **kwargs) -> None:
        super().__init_subclass__(**kwargs)
        if cls.target_name:
            _REGISTRY[cls.target_name] = cls

    @abstractmethod
    def generate(self, ir: IRSet, format_name: str,
                 **options) -> BindingToken:
        """Produce the native artifact for *format_name*.

        ``options`` are target-specific (e.g. ``architecture`` for the
        pbio and c targets).  Unknown options must raise
        :class:`TargetError` so callers notice typos.
        """

    @staticmethod
    def _reject_unknown_options(options: dict, allowed: set[str],
                                target: str) -> None:
        unknown = set(options) - allowed
        if unknown:
            raise TargetError(
                f"target {target!r} does not accept options "
                f"{sorted(unknown)} (allowed: {sorted(allowed)})")


def target_by_name(name: str) -> MetadataTarget:
    """Instantiate the target registered under *name*."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise TargetError(
            f"unknown metadata target {name!r}; available: "
            f"{sorted(_REGISTRY)}") from None
    return cls()


def available_targets() -> tuple[str, ...]:
    return tuple(sorted(_REGISTRY))
