"""Compile a parsed XML Schema into XMIT IR.

This is the selective traversal of section 3.1: complexType subtrees
become :class:`~repro.core.ir.FormatIR`, their element nodes become
fields, and each XML Schema datatype is reduced to an IR primitive kind
plus bit width via :data:`DATATYPE_MAP`.
"""

from __future__ import annotations

from repro.core.ir import ArrayIR, EnumIR, FieldIR, FormatIR, IRSet, TypeRef
from repro.errors import SchemaTypeError
from repro.schema.datatypes import Datatype
from repro.schema.model import (
    ComplexType, ElementDecl, EnumerationType, FIXED, Schema, VARIABLE,
)

#: XML Schema datatype name -> (IR kind, bits).  ``integer`` is
#: unbounded in XML Schema; XMIT maps it to the native int width at
#: binding time, flagged here with bits=None.
DATATYPE_MAP: dict[str, tuple[str, int | None]] = {
    "string": ("string", None),
    "boolean": ("boolean", 8),
    "float": ("float", 32),
    "double": ("float", 64),
    "decimal": ("float", 64),
    "byte": ("integer", 8),
    "short": ("integer", 16),
    "int": ("integer", 32),
    "integer": ("integer", None),
    "long": ("integer", 64),
    "unsignedByte": ("unsigned", 8),
    "unsignedShort": ("unsigned", 16),
    "unsignedInt": ("unsigned", 32),
    "unsignedLong": ("unsigned", 64),
    "nonNegativeInteger": ("unsigned", None),
    "positiveInteger": ("unsigned", None),
}


def compile_schema(schema: Schema, names=None) -> IRSet:
    """Compile *schema* into an :class:`IRSet`.

    *names* selects which complexTypes to compile: None (default)
    compiles everything; an iterable compiles exactly those (so an
    empty iterable yields enums only — the lazy registry's ingest
    step).  Enumerations are always compiled: they are cheap and
    referenced pervasively.  Nested complexType references stay
    symbolic (:class:`~repro.core.ir.TypeRef`), so a subset compile
    never forces its dependencies — binding resolves them on demand.
    """
    ir = IRSet()
    for enum in schema.enumerations.values():
        ir.add_enum(EnumIR(name=enum.name, values=enum.values))
    if names is None:
        selected = list(schema.complex_types.values())
    else:
        try:
            selected = [schema.complex_types[n] for n in names]
        except KeyError as exc:
            raise SchemaTypeError(
                f"schema defines no complexType named {exc}") from None
    for ct in selected:
        ir.add_format(_compile_complex_type(schema, ct))
    return ir


def _compile_complex_type(schema: Schema, ct: ComplexType) -> FormatIR:
    fields = tuple(_compile_element(schema, ct, decl)
                   for decl in ct.elements)
    return FormatIR(name=ct.name, fields=fields,
                    documentation=ct.documentation)


def _compile_element(schema: Schema, ct: ComplexType,
                     decl: ElementDecl) -> FieldIR:
    type_ref = _compile_type_ref(schema, ct, decl)
    array = _compile_array(decl)
    return FieldIR(name=decl.name, type=type_ref, array=array,
                   optional=decl.optional,
                   documentation=decl.documentation)


def _compile_type_ref(schema: Schema, ct: ComplexType,
                      decl: ElementDecl) -> TypeRef:
    resolved = schema.resolve(decl.type_name)
    if isinstance(resolved, ComplexType):
        return TypeRef(format_name=resolved.name)
    if isinstance(resolved, EnumerationType):
        return TypeRef(enum_name=resolved.name)
    assert isinstance(resolved, Datatype)
    try:
        kind, bits = DATATYPE_MAP[resolved.name]
    except KeyError:
        raise SchemaTypeError(
            f"{ct.name}.{decl.name}: datatype {resolved.name!r} has no "
            "binary mapping") from None
    return TypeRef(kind=kind, bits=bits)


def _compile_array(decl: ElementDecl) -> ArrayIR | None:
    spec = decl.array
    if spec.kind == FIXED:
        return ArrayIR(fixed_size=spec.size)
    if spec.kind == VARIABLE:
        return ArrayIR(length_field=spec.length_field,
                       placement=spec.placement)
    return None
