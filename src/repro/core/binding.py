"""Binding tokens.

Section 2: "Binding usually results in the construction of some type of
message format descriptor or token to be used during marshaling."
A :class:`BindingToken` is XMIT's: it names the format and target, and
carries the target-generated native artifact — for the ``pbio`` target
an :class:`~repro.pbio.format.IOFormat` ready to register with an
:class:`~repro.pbio.context.IOContext`; for ``python`` a runtime class;
for source-code targets the generated text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class BindingToken:
    """The result of binding a discovered format to a target."""

    format_name: str
    target: str
    artifact: Any
    #: target-specific extras (e.g. subformat artifacts, architecture).
    details: dict = field(default_factory=dict, compare=False)

    def __repr__(self) -> str:
        return (f"BindingToken({self.format_name!r}, target="
                f"{self.target!r}, artifact={type(self.artifact).__name__})")
