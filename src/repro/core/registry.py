"""Format registry: URL-keyed metadata with change propagation.

One effect of XMIT's indirect discovery (section 3): "changes to the
message formats used by distributed programs can be centralized, and
XMIT ensures that they are propagated to all program components using
these formats."  The registry remembers which URL produced which
formats; :meth:`refresh` re-fetches a URL, recompiles, diffs, and
notifies subscribers of every changed or added format.

The discovery path is resilient (the paper's amortization story
assumes discovery is rare and reliable; a real network makes it
neither):

* fetches go through :func:`repro.http.urls.fetch` under a
  :class:`~repro.http.retry.RetryPolicy` (bounded exponential backoff,
  deterministic jitter);
* fetched documents are held in a digest-keyed cache with a TTL, so a
  re-load inside the TTL costs no fetch and an unchanged digest costs
  no recompile;
* URLs that exhausted their retry budget are negative-cached for a
  short interval, failing fast instead of hammering a dead server;
* a failed :meth:`refresh` (or re-load) of a URL that loaded
  successfully before is logged and counted, and the registry keeps
  serving the **last-known-good** compiled formats instead of raising;
* all mutation happens under a lock, listener notification included,
  so concurrent loaders see exactly one compile per digest and never a
  torn notification batch.

Counters live in :attr:`FormatRegistry.stats`
(:class:`~repro.http.retry.DiscoveryStats`).
"""

from __future__ import annotations

import hashlib
import logging
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.core.ir import FormatIR, IRSet
from repro.core.schema_compiler import compile_schema
from repro.errors import DiscoveryError, ReproError
from repro.http.retry import DiscoveryStats, RetryPolicy
from repro.http.urls import fetch, resolve_url
from repro.obs.metrics import DISCOVERY_COMPILE_SECONDS
from repro.obs.spans import span
from repro.schema.model import Schema
from repro.schema.parser import parse_schema, schema_locations
from repro.xmlcore.parser import parse_bytes

logger = logging.getLogger("repro.discovery")

#: subscriber signature: (event, format_name, format_ir_or_None)
#: where event is "added" | "changed" | "removed".
ChangeListener = Callable[[str, str, FormatIR | None], None]


@dataclass
class _Source:
    url: str
    digest: str
    format_names: tuple[str, ...]
    enum_names: tuple[str, ...] = ()


@dataclass
class _CachedDocument:
    data: bytes
    digest: str
    fetched_at: float


class _LazyFormatMap(dict):
    """``IRSet.formats`` for a lazy registry: complexTypes parsed from
    a document are *deferred* and compiled on first lookup.

    Compiled entries live in the underlying dict; ``_pending`` maps
    format name to the parsed (merged, reference-checked)
    :class:`Schema` that defines it.  Membership, iteration and length
    include pending names — the formats exist, they just have no IR
    yet — while ``values()``/``items()`` materialize everything first,
    since callers iterating IR bodies (schema export, live-message
    matching) genuinely need all of them.  Compilation happens under
    the registry lock, so concurrent first lookups compile once.
    """

    def __init__(self, registry: "FormatRegistry",
                 initial: dict | None = None) -> None:
        super().__init__(initial or {})
        self._registry = registry
        self._pending: dict[str, Schema] = {}

    # -- deferral ------------------------------------------------------------

    def defer(self, name: str, schema: Schema, *,
              replace: bool = False) -> None:
        """Mark *name* as defined by *schema* but not yet compiled.
        ``replace`` drops any previously compiled IR (a re-ingested
        document with a new digest must not serve stale IR)."""
        with self._registry._lock:
            if replace:
                super().pop(name, None)
                self._pending[name] = schema
            elif name not in self._pending \
                    and not super().__contains__(name):
                self._pending[name] = schema

    def pending_names(self) -> tuple[str, ...]:
        with self._registry._lock:
            return tuple(self._pending)

    def compiled_names(self) -> tuple[str, ...]:
        with self._registry._lock:
            return tuple(dict.keys(self))

    # -- dict protocol ---------------------------------------------------------

    def __missing__(self, name):
        with self._registry._lock:
            if super().__contains__(name):    # lost a compile race
                return super().__getitem__(name)
            schema = self._pending.get(name)
            if schema is None:
                raise KeyError(name)
            fmt = self._registry._compile_deferred(name, schema)
            super().__setitem__(name, fmt)
            del self._pending[name]
            return fmt

    def __contains__(self, name) -> bool:
        return super().__contains__(name) or name in self._pending

    def get(self, name, default=None):
        try:
            return self[name]
        except KeyError:
            return default

    def pop(self, name, *default):
        with self._registry._lock:
            self._pending.pop(name, None)
            return super().pop(name, *default)

    def __iter__(self):
        yield from dict.keys(self)
        compiled = set(dict.keys(self))
        yield from (n for n in list(self._pending)
                    if n not in compiled)

    def __len__(self) -> int:
        return len(list(iter(self)))

    def keys(self):
        return list(self)

    def values(self):
        self.materialize()
        return dict.values(self)

    def items(self):
        self.materialize()
        return dict.items(self)

    def materialize(self) -> None:
        """Compile every still-pending format (bulk consumers)."""
        for name in self.pending_names():
            self.get(name)


@dataclass
class FormatRegistry:
    """Tracks loaded metadata documents and their formats.

    With ``lazy=True`` a loaded document is parsed and its enums
    compiled, but each complexType is only compiled to IR on its first
    use (binding, export, diffing) — large schema catalogs cost
    ingest-time parsing only, and registry memory grows with the
    working set instead of the catalog (see the 10k-format benchmark,
    ``BENCH_catalog.json``).
    """

    ir: IRSet = field(default_factory=IRSet)
    retry: RetryPolicy = field(default_factory=RetryPolicy)
    cache_ttl: float = 300.0
    negative_ttl: float = 1.0
    lazy: bool = False
    clock: Callable[[], float] = field(default=time.monotonic,
                                       repr=False)
    stats: DiscoveryStats = field(default_factory=DiscoveryStats)
    loads: int = 0
    _sources: dict[str, _Source] = field(default_factory=dict)
    _listeners: list[ChangeListener] = field(default_factory=list)
    _documents: dict[str, _CachedDocument] = field(default_factory=dict)
    _negative: dict[str, float] = field(default_factory=dict)
    #: digest -> (format names, enum names) of a completed compile.
    _compiled: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = \
        field(default_factory=dict)
    #: name -> successive IR versions seen across loads/refreshes
    #: (advisory lineage; the wire-level digest chains live in
    #: repro.pbio.lineage.LineageRegistry)
    _history: dict[str, list[FormatIR]] = field(default_factory=dict)
    _lock: threading.RLock = field(default_factory=threading.RLock,
                                   repr=False)

    def __post_init__(self) -> None:
        if self.lazy and not isinstance(self.ir.formats,
                                        _LazyFormatMap):
            self.ir.formats = _LazyFormatMap(self, self.ir.formats)

    # -- loading ------------------------------------------------------------

    def load_url(self, url: str) -> tuple[str, ...]:
        """Fetch, parse and compile the schema document at *url*.

        Returns the names of the formats it defined.  A re-load inside
        the cache TTL is served from the document cache without a
        fetch; past the TTL it behaves like :meth:`refresh`.  If the
        URL loaded successfully before and now fails (fetch or
        compile), the failure is counted and the previously compiled
        formats keep being served.
        """
        with self._lock:
            cached = self._fresh_document(url)
            if cached is not None:
                self.stats.count("cache_hits")
                return self._ingest(url, cached.data,
                                    digest=cached.digest)
            self.stats.count("cache_misses")
            return self._load_or_fallback(url).format_names

    def load_text(self, text: str, *, source: str = "<inline>") \
            -> tuple[str, ...]:
        """Compile schema *text* not associated with a fetchable URL."""
        with self._lock:
            return self._ingest(source, text.encode("utf-8"))

    def refresh(self, url: str) -> tuple[str, ...]:
        """Re-fetch *url*; returns names of formats that changed.

        An unchanged document (same digest) is a no-op returning ().
        The TTL cache is bypassed — refresh is an explicit re-fetch.
        A failing refresh of a previously loaded URL is a counted
        no-op (last-known-good); only a URL that never loaded raises.
        """
        with self._lock:
            old = self._sources.get(url)
            try:
                data = self._fetch_checked(url)
            except ReproError as exc:
                fallback = self._serve_last_known_good(url, exc)
                if fallback is None:
                    raise
                return ()
            digest = hashlib.sha256(data).hexdigest()
            if old is not None and old.digest == digest:
                return ()
            before = {name: self.ir.formats.get(name)
                      for name in (old.format_names if old else ())}
            try:
                self._ingest(url, data, digest=digest)
            except ReproError as exc:
                fallback = self._serve_last_known_good(url, exc)
                if fallback is None:
                    raise
                return ()
            changed: list[str] = []
            now = self._sources[url]
            for name in now.format_names:
                previous = before.get(name)
                if previous is None:
                    self._notify("added", name, self.ir.formats[name])
                    changed.append(name)
                elif previous != self.ir.formats[name]:
                    self._notify("changed", name,
                                 self.ir.formats[name])
                    changed.append(name)
            for name in set(before) - set(now.format_names):
                self.ir.formats.pop(name, None)
                self._notify("removed", name, None)
                changed.append(name)
            return tuple(changed)

    # -- resilience internals ------------------------------------------------

    def _fresh_document(self, url: str) -> _CachedDocument | None:
        cached = self._documents.get(url)
        if cached is None:
            return None
        if self.clock() - cached.fetched_at >= self.cache_ttl:
            return None
        return cached

    def _fetch_checked(self, url: str) -> bytes:
        """Fetch under the retry policy, honouring the negative cache
        and refreshing the document cache on success."""
        expiry = self._negative.get(url)
        if expiry is not None:
            if self.clock() < expiry:
                self.stats.count("negative_hits")
                raise DiscoveryError(
                    f"{url} is negative-cached after a recent fetch "
                    f"failure (retry in <= {self.negative_ttl:g}s)")
            del self._negative[url]
        try:
            with span("fetch", url=url):
                data = fetch(url, retry=self.retry, stats=self.stats)
        except ReproError:
            self._negative[url] = self.clock() + self.negative_ttl
            raise
        self._documents[url] = _CachedDocument(
            data=data, digest=hashlib.sha256(data).hexdigest(),
            fetched_at=self.clock())
        return data

    def _load_or_fallback(self, url: str) -> _Source:
        """Fetch + ingest *url*, falling back to the last-known-good
        source on any failure (when one exists)."""
        try:
            data = self._fetch_checked(url)
            self._ingest(url, data,
                         digest=self._documents[url].digest)
        except ReproError as exc:
            fallback = self._serve_last_known_good(url, exc)
            if fallback is None:
                raise
            return fallback
        return self._sources[url]

    def _serve_last_known_good(self, url: str,
                               exc: ReproError) -> _Source | None:
        old = self._sources.get(url)
        if old is None:
            return None
        self.stats.count("fallbacks")
        logger.warning(
            "discovery of %s failed (%s: %s); serving last-known-good "
            "formats %s", url, type(exc).__name__, exc,
            list(old.format_names))
        return old

    # -- compilation ----------------------------------------------------------

    def _ingest(self, url: str, data: bytes,
                digest: str | None = None) -> tuple[str, ...]:
        digest = digest or hashlib.sha256(data).hexdigest()
        known = self._compiled.get(digest)
        if known is not None and \
                all(name in self.ir.formats for name in known[0]):
            # identical document already compiled and still merged;
            # just (re)point the source at it.
            format_names, enum_names = known
            self._sources[url] = _Source(
                url=url, digest=digest, format_names=format_names,
                enum_names=enum_names)
            return format_names
        schema = self._parse_with_includes(url, data)
        if self.lazy:
            return self._ingest_lazy(url, digest, schema)
        with span("compile", source=url, digest=digest) as sp:
            compiled = compile_schema(schema)
        duration_ns = getattr(sp, "duration_ns", 0)  # 0 when disabled
        if duration_ns:
            DISCOVERY_COMPILE_SECONDS.observe(duration_ns * 1e-9)
        self.stats.count("compiles")
        self.ir.merge(compiled)
        for name in compiled.formats:
            chain = self._history.setdefault(name, [])
            fmt = self.ir.formats[name]
            if not chain or chain[-1] != fmt:
                chain.append(fmt)
        self.loads += 1
        self._sources[url] = _Source(
            url=url,
            digest=digest,
            format_names=tuple(compiled.formats),
            enum_names=tuple(compiled.enums))
        self._compiled[digest] = (tuple(compiled.formats),
                                  tuple(compiled.enums))
        return tuple(compiled.formats)

    def _ingest_lazy(self, url: str, digest: str,
                     schema: Schema) -> tuple[str, ...]:
        """Lazy ingest: compile enums now (cheap, referenced by every
        using type), defer each complexType until its first use.
        Re-ingesting a changed document replaces both the pending
        schema and any already-compiled IR, so stale IR can never be
        served after a digest change."""
        enums_only = compile_schema(schema, names=())
        self.ir.merge(enums_only)
        names = tuple(schema.complex_types)
        fmap = self.ir.formats
        for name in names:
            fmap.defer(name, schema, replace=True)
        self.stats.count("deferred_formats", len(names))
        self.loads += 1
        self._sources[url] = _Source(
            url=url, digest=digest, format_names=names,
            enum_names=tuple(enums_only.enums))
        self._compiled[digest] = (names, tuple(enums_only.enums))
        return names

    def _compile_deferred(self, name: str, schema: Schema) -> FormatIR:
        """Compile one deferred complexType on first use (called under
        the registry lock from :meth:`_LazyFormatMap.__missing__`)."""
        with span("compile", format=name, lazy=True):
            compiled = compile_schema(schema, names=(name,))
        fmt = compiled.formats[name]
        self.stats.count("lazy_compiles")
        chain = self._history.setdefault(name, [])
        if not chain or chain[-1] != fmt:
            chain.append(fmt)
        return fmt

    def _parse_with_includes(self, url: str, data: bytes) -> Schema:
        """Parse *data*, fetching ``xsd:include``/``xsd:import``
        documents (schemaLocation resolved relative to *url*) and
        merging everything into one checked schema."""
        merged = Schema()
        visited: set[str] = set()

        def ingest_one(doc_url: str, doc_data: bytes,
                       depth: int) -> None:
            if depth > 16:
                raise DiscoveryError(
                    f"schema include chain too deep at {doc_url}")
            doc = parse_bytes(doc_data)
            for location in schema_locations(doc):
                target = resolve_url(doc_url, location)
                if target in visited:
                    continue  # diamond/repeat includes are fine
                visited.add(target)
                ingest_one(target,
                           fetch(target, retry=self.retry,
                                 stats=self.stats),
                           depth + 1)
            merged.merge(parse_schema(doc, check=False))

        visited.add(url)
        ingest_one(url, data, 0)
        merged.check_references()
        return merged

    # -- queries ------------------------------------------------------------

    def source_of(self, format_name: str) -> str | None:
        """The URL whose document most recently defined *format_name*."""
        with self._lock:
            found = None
            for source in self._sources.values():
                if format_name in source.format_names:
                    found = source.url
            return found

    def urls(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._sources)

    def lineage(self, format_name: str) -> tuple[FormatIR, ...]:
        """Every IR version of *format_name* this registry has
        compiled, oldest first — the discovery-level mirror of the
        wire-level digest chain.  () if the name was never loaded."""
        with self._lock:
            return tuple(self._history.get(format_name, ()))

    # -- change propagation ----------------------------------------------------

    def subscribe(self, listener: ChangeListener) -> None:
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: ChangeListener) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def _notify(self, event: str, name: str,
                fmt: FormatIR | None) -> None:
        for listener in list(self._listeners):
            listener(event, name, fmt)
