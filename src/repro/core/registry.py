"""Format registry: URL-keyed metadata with change propagation.

One effect of XMIT's indirect discovery (section 3): "changes to the
message formats used by distributed programs can be centralized, and
XMIT ensures that they are propagated to all program components using
these formats."  The registry remembers which URL produced which
formats; :meth:`refresh` re-fetches a URL, recompiles, diffs, and
notifies subscribers of every changed or added format.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Callable

from repro.core.ir import FormatIR, IRSet
from repro.core.schema_compiler import compile_schema
from repro.errors import DiscoveryError
from repro.http.urls import fetch, resolve_url
from repro.schema.model import Schema
from repro.schema.parser import parse_schema, schema_locations
from repro.xmlcore.parser import parse_bytes

#: subscriber signature: (event, format_name, format_ir_or_None)
#: where event is "added" | "changed" | "removed".
ChangeListener = Callable[[str, str, FormatIR | None], None]


@dataclass
class _Source:
    url: str
    digest: str
    format_names: tuple[str, ...]
    enum_names: tuple[str, ...] = ()


@dataclass
class FormatRegistry:
    """Tracks loaded metadata documents and their formats."""

    ir: IRSet = field(default_factory=IRSet)
    _sources: dict[str, _Source] = field(default_factory=dict)
    _listeners: list[ChangeListener] = field(default_factory=list)
    loads: int = 0

    # -- loading ------------------------------------------------------------

    def load_url(self, url: str) -> tuple[str, ...]:
        """Fetch, parse and compile the schema document at *url*.

        Returns the names of the formats it defined.  Loading the same
        URL again is treated as a refresh.
        """
        data = fetch(url)
        return self._ingest(url, data)

    def load_text(self, text: str, *, source: str = "<inline>") \
            -> tuple[str, ...]:
        """Compile schema *text* not associated with a fetchable URL."""
        return self._ingest(source, text.encode("utf-8"))

    def refresh(self, url: str) -> tuple[str, ...]:
        """Re-fetch *url*; returns names of formats that changed.

        An unchanged document (same digest) is a no-op returning ().
        """
        old = self._sources.get(url)
        data = fetch(url)
        digest = hashlib.sha256(data).hexdigest()
        if old is not None and old.digest == digest:
            return ()
        before = {name: self.ir.formats.get(name)
                  for name in (old.format_names if old else ())}
        self._ingest(url, data, digest=digest)
        changed: list[str] = []
        now = self._sources[url]
        for name in now.format_names:
            previous = before.get(name)
            if previous is None:
                self._notify("added", name, self.ir.formats[name])
                changed.append(name)
            elif previous != self.ir.formats[name]:
                self._notify("changed", name, self.ir.formats[name])
                changed.append(name)
        for name in set(before) - set(now.format_names):
            self.ir.formats.pop(name, None)
            self._notify("removed", name, None)
            changed.append(name)
        return tuple(changed)

    def _ingest(self, url: str, data: bytes,
                digest: str | None = None) -> tuple[str, ...]:
        schema = self._parse_with_includes(url, data)
        compiled = compile_schema(schema)
        self.ir.merge(compiled)
        self.loads += 1
        self._sources[url] = _Source(
            url=url,
            digest=digest or hashlib.sha256(data).hexdigest(),
            format_names=tuple(compiled.formats),
            enum_names=tuple(compiled.enums))
        return tuple(compiled.formats)

    def _parse_with_includes(self, url: str, data: bytes) -> Schema:
        """Parse *data*, fetching ``xsd:include``/``xsd:import``
        documents (schemaLocation resolved relative to *url*) and
        merging everything into one checked schema."""
        merged = Schema()
        visited: set[str] = set()

        def ingest_one(doc_url: str, doc_data: bytes,
                       depth: int) -> None:
            if depth > 16:
                raise DiscoveryError(
                    f"schema include chain too deep at {doc_url}")
            doc = parse_bytes(doc_data)
            for location in schema_locations(doc):
                target = resolve_url(doc_url, location)
                if target in visited:
                    continue  # diamond/repeat includes are fine
                visited.add(target)
                ingest_one(target, fetch(target), depth + 1)
            merged.merge(parse_schema(doc, check=False))

        visited.add(url)
        ingest_one(url, data, 0)
        merged.check_references()
        return merged

    # -- queries ------------------------------------------------------------

    def source_of(self, format_name: str) -> str | None:
        """The URL whose document most recently defined *format_name*."""
        found = None
        for source in self._sources.values():
            if format_name in source.format_names:
                found = source.url
        return found

    def urls(self) -> tuple[str, ...]:
        return tuple(self._sources)

    # -- change propagation ----------------------------------------------------

    def subscribe(self, listener: ChangeListener) -> None:
        self._listeners.append(listener)

    def unsubscribe(self, listener: ChangeListener) -> None:
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self, event: str, name: str,
                fmt: FormatIR | None) -> None:
        for listener in list(self._listeners):
            listener(event, name, fmt)
