"""The XMIT toolkit facade.

Section 3.1: "XMIT includes an API that allows a programmer to first
'load' the toolkit with message definitions (contained in XML
documents) from one or more URLs.  Once the desired definitions have
been obtained, the type of native metadata to be generated is selected
... and the native metadata generation process is carried out ...
Lastly, XMIT produces an appropriate binding token representing the
collection of message formats."

Typical use::

    xmit = XMIT()
    xmit.load_url("http://formats.example/hydrology.xsd")
    ctx = IOContext()
    fmt = xmit.register_with_context(ctx, "SimpleData")
    wire = ctx.encode("SimpleData", {...})
"""

from __future__ import annotations

from repro.core.binding import BindingToken
from repro.core.ir import IRSet
from repro.core.registry import FormatRegistry
from repro.http.retry import DiscoveryStats, RetryPolicy
from repro.core.targets.base import target_by_name
from repro.errors import XMITError
from repro.pbio.context import IOContext
from repro.pbio.format import IOFormat
from repro.pbio.machine import Architecture
from repro.schema.emitter import emit_schema
from repro.schema.model import Schema
from repro.xmlcore.serializer import serialize


class XMIT:
    """XML Metadata Integration Toolkit."""

    def __init__(self, *, retry: RetryPolicy | None = None,
                 cache_ttl: float | None = None,
                 lazy: bool = False) -> None:
        kwargs = {}
        if retry is not None:
            kwargs["retry"] = retry
        if cache_ttl is not None:
            kwargs["cache_ttl"] = cache_ttl
        if lazy:
            # defer per-complexType IR compilation to first use; see
            # FormatRegistry(lazy=True)
            kwargs["lazy"] = True
        self.registry = FormatRegistry(**kwargs)
        self._bindings: dict[tuple, BindingToken] = {}

    # -- discovery ----------------------------------------------------------

    def load_url(self, url: str) -> tuple[str, ...]:
        """Load message definitions from an XML document at *url*.

        Supports ``http:``, ``file:`` and ``mem:`` URLs; returns the
        names of the formats the document defined.
        """
        return self.registry.load_url(url)

    def load_text(self, text: str) -> tuple[str, ...]:
        """Load message definitions from in-memory XML text."""
        return self.registry.load_text(text)

    def refresh(self, url: str) -> tuple[str, ...]:
        """Re-fetch *url* and propagate any format changes (bindings
        for changed formats are invalidated)."""
        changed = self.registry.refresh(url)
        if changed:
            self._bindings = {
                key: token for key, token in self._bindings.items()
                if key[0] not in changed}
        return changed

    @property
    def ir(self) -> IRSet:
        """The toolkit's compiled internal representation."""
        return self.registry.ir

    @property
    def discovery_stats(self) -> DiscoveryStats:
        """Counters for the discovery path: fetch attempts, retries,
        cache hits/misses, last-known-good fallbacks, compiles."""
        return self.registry.stats

    @property
    def format_names(self) -> tuple[str, ...]:
        return tuple(self.registry.ir.formats)

    def subscribe(self, listener) -> None:
        """Register a change listener (see
        :class:`~repro.core.registry.FormatRegistry`)."""
        self.registry.subscribe(listener)

    # -- binding ------------------------------------------------------------

    def bind(self, format_name: str, target: str = "pbio",
             **options) -> BindingToken:
        """Generate native metadata for *format_name* via *target*.

        Tokens are cached per (format, target, options); a refresh that
        changes the format invalidates its cache entries.
        """
        if format_name not in self.registry.ir.formats:
            raise XMITError(
                f"format {format_name!r} has not been discovered; "
                f"loaded formats: {sorted(self.registry.ir.formats)}")
        key = (format_name, target,
               tuple(sorted(options.items(), key=lambda kv: kv[0])))
        try:
            return self._bindings[key]
        except (KeyError, TypeError):
            # TypeError: unhashable option value -> skip the cache.
            pass
        token = target_by_name(target).generate(
            self.registry.ir, format_name, **options)
        try:
            self._bindings[key] = token
        except TypeError:
            pass
        return token

    # -- marshaling integration ----------------------------------------------

    def register_with_context(self, context: IOContext,
                              format_name: str) -> IOFormat:
        """Bind *format_name* for PBIO on the context's architecture
        and register it — the complete XMIT discovery-to-BCM path whose
        cost the RDM experiments measure."""
        token = self.bind(format_name, target="pbio",
                          architecture=context.architecture)
        return context.register(token.artifact)

    # -- convenience generators ------------------------------------------------

    def generate_python_class(self, format_name: str) -> type:
        """A runtime-generated message class (see
        :mod:`repro.core.targets.python_target`)."""
        return self.bind(format_name, target="python").artifact

    def generate_java_source(self, format_name: str,
                             package: str = "xmit.generated") -> str:
        """Java source text for *format_name* (and dependencies via the
        token's ``details['units']``)."""
        return self.bind(format_name, target="java",
                         package=package).artifact

    def generate_c_source(self, format_name: str,
                          architecture: Architecture | None = None) \
            -> str:
        """C struct + IOField source, Fig. 2 style."""
        options = {}
        if architecture is not None:
            options["architecture"] = architecture
        return self.bind(format_name, target="c", **options).artifact

    # -- live-message analysis -----------------------------------------------------

    def match_message(self, xml_text: str | bytes) -> str | None:
        """Which loaded format does this live XML message best match?

        Section 3: "schema-checking tools may be applied to live
        messages received from other parties to determine which of
        several structure definitions a message best matches."
        Returns the format name, or None if nothing validates.
        """
        from repro.schema.validator import match_format
        from repro.xmlcore.parser import parse, parse_bytes
        doc = (parse_bytes(xml_text) if isinstance(xml_text, bytes)
               else parse(xml_text))
        return match_format(self._reconstruct_schema(), doc.root)

    # -- publication -------------------------------------------------------------

    def export_schema(self, names: list[str] | None = None) -> str:
        """Render loaded formats back to XSD text, suitable for
        publishing at a URL for other components to discover."""
        schema = self._reconstruct_schema()
        doc = emit_schema(schema, names=names)
        return serialize(doc, indent="  ")

    def _reconstruct_schema(self) -> Schema:
        # Round-trip through the emitter requires a Schema; rebuild one
        # from IR via the emitter's own input model.
        from repro.schema.model import EnumerationType, Schema as SchemaModel
        schema = SchemaModel()
        for enum in self.registry.ir.enums.values():
            schema.add(EnumerationType(name=enum.name,
                                       values=enum.values))
        for fmt in self.registry.ir.formats.values():
            schema.add(self._complex_type_for(fmt))
        schema.check_references()
        return schema

    @staticmethod
    def _complex_type_for(fmt) -> "ComplexType":
        from repro.schema.model import (
            ArraySpec, ComplexType, ElementDecl, FIXED, VARIABLE,
        )
        decls = []
        for field in fmt.fields:
            type_name = _xsd_type_name(field.type)
            if field.array is None:
                spec = ArraySpec()
            elif field.array.fixed_size is not None:
                spec = ArraySpec(kind=FIXED, size=field.array.fixed_size)
            else:
                spec = ArraySpec(kind=VARIABLE,
                                 length_field=field.array.length_field,
                                 placement=field.array.placement)
            decls.append(ElementDecl(
                name=field.name, type_name=type_name, array=spec,
                min_occurs=0 if field.optional else 1,
                documentation=field.documentation))
        return ComplexType(name=fmt.name, elements=tuple(decls),
                           documentation=fmt.documentation)


#: IR (kind, bits) -> XSD datatype local name, for schema export.
_IR_TO_XSD: dict[tuple[str, int | None], str] = {
    ("string", None): "string",
    ("boolean", 8): "boolean",
    ("float", 32): "float",
    ("float", 64): "double",
    ("integer", 8): "byte",
    ("integer", 16): "short",
    ("integer", 32): "int",
    ("integer", None): "integer",
    ("integer", 64): "long",
    ("unsigned", 8): "unsignedByte",
    ("unsigned", 16): "unsignedShort",
    ("unsigned", 32): "unsignedInt",
    ("unsigned", None): "unsignedLong",
    ("unsigned", 64): "unsignedLong",
}


def _xsd_type_name(tref) -> str:
    if tref.is_nested:
        return tref.format_name
    if tref.is_enum:
        return tref.enum_name
    return _IR_TO_XSD[(tref.kind, tref.bits)]
