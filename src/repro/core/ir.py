"""XMIT's internal representation of message formats.

Section 3 of the paper: "XML metadata is converted into an internal
representation from which BCM-specific metadata is generated."  The IR
is deliberately independent of both the XML source form and any target:
field types are reduced to a small closed set of primitive kinds with
explicit bit widths, plus enum and nested-format references, and array
shapes are normalized (fixed size / length-field-linked / self-sized).

Targets (:mod:`repro.core.targets`) consume only this IR, which is what
makes the discovery/binding decomposition orthogonal: any discovery
path that produces IR works with any target.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import XMITError

#: primitive IR kinds.
PRIM_KINDS = ("integer", "unsigned", "float", "string", "boolean")


@dataclass(frozen=True)
class TypeRef:
    """What a field's values are: a primitive, an enum, or a format.

    Exactly one of the three identities applies:

    * primitive: ``kind`` in :data:`PRIM_KINDS`, ``bits`` is the value
      width (None for string, meaning unbounded text);
    * enum: ``enum_name`` set;
    * nested: ``format_name`` set.
    """

    kind: str | None = None
    bits: int | None = None
    enum_name: str | None = None
    format_name: str | None = None

    def __post_init__(self) -> None:
        identities = sum(x is not None
                         for x in (self.kind, self.enum_name,
                                   self.format_name))
        if identities != 1:
            raise XMITError(
                f"TypeRef must have exactly one identity, got {self!r}")
        if self.kind is not None and self.kind not in PRIM_KINDS:
            raise XMITError(f"unknown primitive kind {self.kind!r}")

    @property
    def is_primitive(self) -> bool:
        return self.kind is not None

    @property
    def is_enum(self) -> bool:
        return self.enum_name is not None

    @property
    def is_nested(self) -> bool:
        return self.format_name is not None

    def describe(self) -> str:
        if self.is_primitive:
            bits = f"{self.bits}" if self.bits else "text"
            return f"{self.kind}/{bits}"
        if self.is_enum:
            return f"enum:{self.enum_name}"
        return f"format:{self.format_name}"


@dataclass(frozen=True)
class ArrayIR:
    """Normalized array shape.

    ``fixed_size`` for compile-time-sized arrays; ``length_field`` for
    run-time sizing by a sibling integer field (with ``placement``
    recording where the schema put the sizing field relative to the
    array); neither for self-sized dynamic arrays.
    """

    fixed_size: int | None = None
    length_field: str | None = None
    placement: str = "before"

    def __post_init__(self) -> None:
        if self.fixed_size is not None and self.length_field is not None:
            raise XMITError(
                "array cannot be both fixed and length-field sized")
        if self.fixed_size is not None and self.fixed_size < 1:
            raise XMITError("fixed array size must be positive")


@dataclass(frozen=True)
class FieldIR:
    """One field of a message format."""

    name: str
    type: TypeRef
    array: ArrayIR | None = None
    optional: bool = False
    documentation: str | None = None

    @property
    def is_array(self) -> bool:
        return self.array is not None


@dataclass(frozen=True)
class EnumIR:
    """A named enumeration with its ordered labels."""

    name: str
    values: tuple[str, ...]


@dataclass(frozen=True)
class FormatIR:
    """One message format: an ordered field tuple."""

    name: str
    fields: tuple[FieldIR, ...]
    documentation: str | None = None

    def field(self, name: str) -> FieldIR:
        for f in self.fields:
            if f.name == name:
                return f
        raise XMITError(f"format {self.name!r} has no field {name!r}")

    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)


@dataclass
class IRSet:
    """The toolkit's working set of compiled formats and enums."""

    formats: dict[str, FormatIR] = field(default_factory=dict)
    enums: dict[str, EnumIR] = field(default_factory=dict)

    def add_format(self, fmt: FormatIR) -> None:
        self.formats[fmt.name] = fmt

    def add_enum(self, enum: EnumIR) -> None:
        self.enums[enum.name] = enum

    def format(self, name: str) -> FormatIR:
        try:
            return self.formats[name]
        except KeyError:
            raise XMITError(
                f"no format named {name!r} has been loaded; known: "
                f"{sorted(self.formats)}") from None

    def enum(self, name: str) -> EnumIR:
        try:
            return self.enums[name]
        except KeyError:
            raise XMITError(f"no enum named {name!r}") from None

    def merge(self, other: "IRSet") -> None:
        self.formats.update(other.formats)
        self.enums.update(other.enums)

    def dependencies(self, name: str) -> tuple[str, ...]:
        """Names of nested formats *name* references, depth-first,
        dependencies before dependents, excluding *name* itself."""
        seen: list[str] = []

        def visit(fmt_name: str) -> None:
            fmt = self.format(fmt_name)
            for f in fmt.fields:
                if f.type.is_nested and f.type.format_name not in seen:
                    visit(f.type.format_name)
                    seen.append(f.type.format_name)
        visit(name)
        return tuple(seen)

    def complexity(self, name: str) -> int:
        """Total field count including nested formats — the paper's
        observation that registration cost "corresponds more closely to
        the complexity of the message (in terms of size, number of
        fields, and nested definitions)" made measurable."""
        fmt = self.format(name)
        total = len(fmt.fields)
        for dep in self.dependencies(name):
            total += len(self.format(dep).fields)
        return total
