"""Runtime type extension: client-customized format views.

The paper's future-work scenario (section 1): "less capable
visualization engines such as handhelds can customize remote metadata
for their own needs."  A *view* is a client-side derivation of a
discovered format — a subset of its fields, optionally with numeric
precision reduced — that the client binds and registers as its own
native format.  PBIO's restricted-evolution conversion then delivers
exactly the view's fields from full records sent by unmodified peers.

Usage::

    xmit.load_url(url)                       # full GridMeta discovered
    view = derive_view(xmit.ir, "GridMeta",
                       fields=["timestep", "min_depth", "max_depth"],
                       name="GridMetaHandheld")
    xmit.ir.add_format(view)                 # now bindable like any format
    token = xmit.bind("GridMetaHandheld")
    receiver_ctx.register(token.artifact)
    small = receiver_ctx.decode_as(wire, "GridMetaHandheld")
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.ir import FieldIR, FormatIR, IRSet, TypeRef
from repro.errors import XMITError


def derive_view(ir: IRSet, format_name: str, *,
                fields: list[str] | None = None,
                name: str | None = None,
                reduce_floats: bool = False,
                drop_arrays: bool = False) -> FormatIR:
    """Derive a reduced :class:`FormatIR` from a discovered format.

    ``fields``       keeps only the named fields (in base-format order);
    ``reduce_floats`` narrows 64-bit floats to 32-bit (handheld-class
    precision; conversion stays lossless *for the receiver* because the
    wire value is converted on decode, not re-encoded);
    ``drop_arrays``  removes dynamic-array payload fields (and their
    now-unreferenced sizing fields) — metadata-only consumption.

    The derived format keeps the base field names and types, so PBIO's
    conversion planner (:mod:`repro.pbio.convert`) maps full wire
    records onto it by name with no custom code.
    """
    base = ir.format(format_name)
    selected = list(base.fields)

    if drop_arrays:
        dropped = {f.name for f in selected
                   if f.array is not None and f.array.fixed_size is None}
        sizing_still_needed = {
            f.array.length_field for f in selected
            if f.array is not None and f.array.length_field
            and f.name not in dropped}
        orphan_sizers = {
            f.array.length_field for f in selected
            if f.array is not None and f.array.length_field
            and f.name in dropped} - sizing_still_needed
        selected = [f for f in selected
                    if f.name not in dropped
                    and f.name not in orphan_sizers]

    if fields is not None:
        wanted = set(fields)
        unknown = wanted - {f.name for f in base.fields}
        if unknown:
            raise XMITError(
                f"view of {format_name!r}: unknown fields "
                f"{sorted(unknown)}")
        # keep sizing fields for any kept dynamic arrays
        for field in base.fields:
            if field.name in wanted and field.array is not None and \
                    field.array.length_field:
                wanted.add(field.array.length_field)
        selected = [f for f in selected if f.name in wanted]

    if reduce_floats:
        selected = [self_reduce_float(f) for f in selected]

    if not selected:
        raise XMITError(
            f"view of {format_name!r} selects no fields")

    view_name = name or f"{format_name}View"
    if view_name == format_name:
        raise XMITError("a view must not shadow its base format")
    return FormatIR(
        name=view_name, fields=tuple(selected),
        documentation=(f"Client-derived view of {format_name} "
                       f"({len(selected)}/{len(base.fields)} fields)."))


def derive_lineage_view(ir: IRSet, format_name: str, *,
                        upto_field: str,
                        name: str | None = None) -> FormatIR:
    """The older-version view of an evolved format.

    Restricted evolution only ever *appends* fields, so an ancestor
    version of a format is exactly a prefix of the evolved field
    tuple.  This derives that prefix — every field up to and including
    *upto_field* (plus any sizing fields kept arrays reference) — as a
    bindable :class:`FormatIR`.  A stale subscriber that discovers
    only the new metadata can reconstruct its own version this way and
    keep decoding, which is the instance-based minimal-binding idea
    from the mobile-devices paper applied to version skew.
    """
    base = ir.format(format_name)
    names = [f.name for f in base.fields]
    if upto_field not in names:
        raise XMITError(
            f"lineage view of {format_name!r}: no field "
            f"{upto_field!r}")
    prefix = names[:names.index(upto_field) + 1]
    return derive_view(ir, format_name, fields=prefix,
                       name=name or f"{format_name}V{len(prefix)}")


def self_reduce_float(field: FieldIR) -> FieldIR:
    tref = field.type
    if tref.is_primitive and tref.kind == "float" and tref.bits == 64:
        return replace(field, type=TypeRef(kind="float", bits=32))
    return field


def view_conversion_names(base: FormatIR, view: FormatIR) \
        -> tuple[tuple[str, ...], tuple[str, ...]]:
    """(kept, dropped) field names, for reporting/UI."""
    view_names = set(view.field_names())
    kept = tuple(n for n in base.field_names() if n in view_names)
    dropped = tuple(n for n in base.field_names()
                    if n not in view_names)
    return kept, dropped
