"""XMIT — the XML Metadata Integration Toolkit.

The paper's contribution, reproduced: a run-time library that loads
message-format metadata expressed in XML Schema from URLs, converts it
to an internal representation, and generates *native* metadata for
binary communication mechanisms — so applications keep XML's open,
program-external metadata while transmitting in efficient binary form.

The three metadata phases of section 2 map onto the API:

* **discovery** -- :meth:`XMIT.load_url` / :meth:`XMIT.load_text`
  (XML fetched, parsed, schema-compiled to IR);
* **binding**   -- :meth:`XMIT.bind` (IR run through a target
  generator, yielding a :class:`BindingToken` holding native metadata);
* **marshaling** -- the token's artifact used directly with the BCM
  (for PBIO: an :class:`~repro.pbio.format.IOFormat` registered with an
  :class:`~repro.pbio.context.IOContext`, encoding at full binary
  speed).

Targets: ``pbio`` (field lists + layouts per architecture), ``python``
(runtime-generated message classes — our analog of the paper's
runtime-loaded Java bytecode), ``java`` (Java source text), ``c``
(C struct + IOField source, Fig. 2 style).
"""

from repro.core.ir import EnumIR, FieldIR, FormatIR, IRSet
from repro.core.schema_compiler import compile_schema
from repro.core.binding import BindingToken
from repro.core.toolkit import XMIT
from repro.core.registry import FormatRegistry
from repro.core.targets import available_targets

__all__ = [
    "BindingToken",
    "EnumIR",
    "FieldIR",
    "FormatIR",
    "FormatRegistry",
    "IRSet",
    "XMIT",
    "available_targets",
    "compile_schema",
]
