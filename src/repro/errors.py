"""Exception hierarchy for the repro (XMIT reproduction) package.

Every error raised by the library derives from :class:`ReproError` so
applications can install a single catch-all while still being able to
discriminate between subsystem failures (XML parsing, schema
compilation, PBIO marshaling, transport, discovery).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


# ---------------------------------------------------------------------------
# XML substrate
# ---------------------------------------------------------------------------

class XMLError(ReproError):
    """Base class for XML-related errors."""


class XMLWellFormednessError(XMLError):
    """The document violates an XML 1.0 well-formedness constraint.

    Carries the source position (1-based line and column) where the
    violation was detected, when available.
    """

    def __init__(self, message: str, line: int | None = None,
                 column: int | None = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XMLNamespaceError(XMLError):
    """Namespace constraint violation (undeclared prefix, bad binding)."""


# ---------------------------------------------------------------------------
# XML Schema subset
# ---------------------------------------------------------------------------

class SchemaError(ReproError):
    """Base class for XML Schema processing errors."""


class SchemaParseError(SchemaError):
    """The schema document itself is malformed or uses unsupported
    constructs."""


class SchemaTypeError(SchemaError):
    """Reference to an unknown or incompatible schema type."""


class SchemaValidationError(SchemaError):
    """An instance document does not conform to its schema."""


# ---------------------------------------------------------------------------
# PBIO binary communication mechanism
# ---------------------------------------------------------------------------

class PBIOError(ReproError):
    """Base class for PBIO errors."""


class LayoutError(PBIOError):
    """Invalid C-structure layout (bad offsets, overlaps, unknown types)."""


class FormatRegistrationError(PBIOError):
    """A format could not be registered with an IOContext."""


class UnknownFormatError(PBIOError):
    """A wire record references a format ID that cannot be resolved."""


class EncodeError(PBIOError):
    """Record marshaling failed (missing field, type mismatch, bounds)."""


class DecodeError(PBIOError):
    """Record unmarshaling failed (truncated buffer, corrupt header)."""


class WireParseError(DecodeError, EncodeError):
    """A record or batch envelope failed validation (bad magic,
    unsupported version, lying lengths).

    Subclasses both :class:`DecodeError` and :class:`EncodeError`:
    header/batch parsing historically raised :class:`EncodeError`
    (the parsers live next to the encoder), but the untrusted-input
    contract promises receivers that every rejection of wire bytes is
    a :class:`DecodeError`.  Deriving from both keeps existing callers
    working while the fuzz oracle can rely on the decode-side type.
    """


class ConversionError(PBIOError):
    """No conversion plan exists between a wire format and the native
    format expected by the receiver."""


class PlanCacheError(PBIOError):
    """A persisted codec plan failed verification on load (digest
    mismatch, layout inconsistency, truncated or foreign entry).

    Never escapes :func:`repro.pbio.encode.encoder_for_format` /
    :func:`repro.pbio.decode.decoder_for_format` — a failing cache
    entry is counted and the plan is recompiled from metadata."""


# ---------------------------------------------------------------------------
# Baseline wire formats
# ---------------------------------------------------------------------------

class WireFormatError(ReproError):
    """Errors from the baseline wire-format codecs (XML/MPI/CDR/XDR)."""


# ---------------------------------------------------------------------------
# Discovery / HTTP / transport
# ---------------------------------------------------------------------------

class DiscoveryError(ReproError):
    """Metadata discovery failed (URL unresolvable, fetch error)."""


class MetadataNotFoundError(DiscoveryError):
    """The document definitively does not exist at the URL (missing
    ``mem:`` publication, missing file).  Never worth retrying."""


class HTTPError(DiscoveryError):
    """HTTP substrate failure; carries the response status when known."""

    def __init__(self, message: str, status: int | None = None) -> None:
        self.status = status
        super().__init__(message)


class TransportError(ReproError):
    """Connection-level failure in the message transport."""


class ProtocolError(TransportError):
    """Peer violated the record/negotiation protocol."""


class FrameTooLargeError(ProtocolError):
    """A frame-length prefix exceeds the endpoint's configured cap.

    Raised (and recorded as a per-client close reason by the event
    loop) instead of a bare :class:`TransportError` so servers can
    drop the one offending client without tearing down the loop.
    """

    def __init__(self, length: int, limit: int) -> None:
        self.length = length
        self.limit = limit
        super().__init__(
            f"frame length {length} exceeds cap {limit}")


class SlowConsumerError(TransportError):
    """A subscriber's bounded write queue stayed over its limit.

    Used as the eviction reason under the ``disconnect-slow``
    backpressure policy and when a ``block`` wait times out.
    """


# ---------------------------------------------------------------------------
# XMIT core
# ---------------------------------------------------------------------------

class XMITError(ReproError):
    """Base class for XMIT toolkit errors."""


class BindingError(XMITError):
    """Binding a format to a native target failed."""


class TargetError(XMITError):
    """Requested native-metadata target is unknown or rejected the IR."""
