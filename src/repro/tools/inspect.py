"""Wire-record inspection.

:func:`dump_record` renders a PBIO wire record (header + body) as an
annotated hexdump: which bytes are the header, which belong to each
field of the fixed section (including padding), and where the
variable-length section's strings/arrays live.  :func:`describe_format`
prints a format's field table, Fig. 2 style.

Both operate purely on metadata — no decoding assumptions beyond what
the format declares — which makes them safe on corrupt records (the
usual reason one reaches for a dumper).
"""

from __future__ import annotations

from io import StringIO

from repro.pbio.encode import HEADER_LEN, parse_header
from repro.pbio.fields import FieldList
from repro.pbio.format import IOFormat


def describe_format(fmt: IOFormat) -> str:
    """A human-readable field table for *fmt*."""
    out = StringIO()
    arch = fmt.architecture
    out.write(f"format {fmt.name!r}  id={fmt.format_id}\n")
    out.write(f"architecture {arch.name} ({arch.byte_order}-endian), "
              f"record length {fmt.field_list.record_length}\n")
    _write_field_table(out, fmt.field_list, indent="")
    for field_name, values in sorted(fmt.enums.items()):
        out.write(f"enum table for {field_name!r}: "
                  f"{list(values)}\n")
    return out.getvalue()


def _write_field_table(out: StringIO, field_list: FieldList,
                       indent: str) -> None:
    for field in field_list:
        out.write(f"{indent}  [{field.offset:4d}] "
                  f"{field.name:<16s} {field.type:<24s} "
                  f"size {field.size}\n")
        ftype = field.field_type
        if ftype.kind == "subformat":
            out.write(f"{indent}    subformat {ftype.base}:\n")
            _write_field_table(out, field_list.subformat(ftype.base),
                               indent + "    ")


def dump_record(data: bytes, fmt: IOFormat | None = None, *,
                width: int = 16) -> str:
    """Annotated hexdump of a wire record.

    With *fmt*, fixed-section byte ranges are labeled per field; the
    variable section is dumped raw.  Without it only the header is
    interpreted.
    """
    out = StringIO()
    fid, body_len = parse_header(data)
    out.write(f"header: magic PB, format id {fid}, "
              f"body {body_len} bytes\n")
    _hexdump(out, data[:HEADER_LEN], base=0, label="header",
             width=width)
    body = data[HEADER_LEN:HEADER_LEN + body_len]
    if fmt is None:
        _hexdump(out, body, base=HEADER_LEN, label="body", width=width)
        return out.getvalue()

    if fmt.format_id != fid:
        out.write(f"warning: supplied format id {fmt.format_id} does "
                  "not match the record\n")
    field_list = fmt.field_list
    cursor = 0
    for field in field_list:
        extent = field_list.inline_extent(field)
        if field.offset > cursor:
            _hexdump(out, body[cursor:field.offset],
                     base=HEADER_LEN + cursor, label="(padding)",
                     width=width)
        _hexdump(out, body[field.offset:field.offset + extent],
                 base=HEADER_LEN + field.offset,
                 label=f"{field.name}: {field.type}", width=width)
        cursor = field.offset + extent
    record_len = field_list.record_length
    if cursor < record_len:
        _hexdump(out, body[cursor:record_len],
                 base=HEADER_LEN + cursor, label="(padding)",
                 width=width)
    if len(body) > record_len:
        _hexdump(out, body[record_len:], base=HEADER_LEN + record_len,
                 label="variable section", width=width)
    return out.getvalue()


def _hexdump(out: StringIO, chunk: bytes, *, base: int, label: str,
             width: int) -> None:
    if not chunk:
        return
    out.write(f"-- {label}\n")
    for start in range(0, len(chunk), width):
        row = chunk[start:start + width]
        hexes = " ".join(f"{b:02x}" for b in row)
        text = "".join(chr(b) if 0x20 <= b < 0x7F else "." for b in row)
        out.write(f"{base + start:08x}  {hexes:<{width * 3}s} "
                  f"|{text}|\n")


def main(argv: list[str] | None = None) -> int:
    """CLI: ``python -m repro.tools.inspect record.bin
    [--schema doc.xsd --format Name]``."""
    import argparse
    import sys
    from pathlib import Path

    parser = argparse.ArgumentParser(
        prog="repro-inspect",
        description="Annotated hexdump of a PBIO wire record.")
    parser.add_argument("record", help="file containing the raw "
                                       "wire record (header + body)")
    parser.add_argument("--schema", help="schema document (path or "
                                         "URL) describing the format")
    parser.add_argument("--format", dest="format_name",
                        help="format name within the schema")
    args = parser.parse_args(argv)

    try:
        data = Path(args.record).read_bytes()
    except OSError as exc:
        print(f"repro-inspect: {exc}", file=sys.stderr)
        return 1

    fmt = None
    if args.schema:
        if not args.format_name:
            print("repro-inspect: --schema requires --format",
                  file=sys.stderr)
            return 1
        from repro.core.toolkit import XMIT
        from repro.errors import ReproError
        xmit = XMIT()
        try:
            if ":" in args.schema and not Path(args.schema).exists():
                xmit.load_url(args.schema)
            else:
                xmit.load_text(
                    Path(args.schema).read_text(encoding="utf-8"))
            fmt = xmit.bind(args.format_name).artifact
            print(describe_format(fmt))
        except (ReproError, OSError) as exc:
            print(f"repro-inspect: {exc}", file=sys.stderr)
            return 1
    try:
        print(dump_record(data, fmt), end="")
    except Exception as exc:
        print(f"repro-inspect: cannot parse record: {exc}",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI shim
    import sys

    sys.exit(main())
