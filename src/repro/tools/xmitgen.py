"""xmitgen — command-line metadata generator.

The XMIT analog of an IDL compiler: point it at a schema document
(path or ``http:``/``file:``/``mem:`` URL) and it renders every format
— or a selection — through any source target.

Usage::

    python -m repro.tools.xmitgen formats.xsd --target c
    python -m repro.tools.xmitgen http://host/f.xsd -t java -t cpp
    python -m repro.tools.xmitgen formats.xsd --format SimpleData \
        --target idl --out-dir generated/

Without ``--out-dir`` everything prints to stdout; with it, one file
per (format, target) is written using conventional extensions.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.core.targets.base import available_targets
from repro.core.toolkit import XMIT
from repro.errors import ReproError

#: file extension per source target.
_EXTENSIONS = {"c": "h", "cpp": "hpp", "java": "java", "idl": "idl"}

#: targets whose artifact is source text (the CLI's menu).
SOURCE_TARGETS = tuple(sorted(_EXTENSIONS))


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="xmitgen",
        description="Generate native metadata from XML Schema "
                    "message formats.")
    parser.add_argument("source",
                        help="schema document: a file path or a "
                             "http:/file:/mem: URL")
    parser.add_argument("-t", "--target", action="append",
                        choices=SOURCE_TARGETS, default=None,
                        help="source target(s); default: c")
    parser.add_argument("-f", "--format", action="append",
                        dest="formats", default=None,
                        help="format name(s) to generate; default: "
                             "all discovered")
    parser.add_argument("-o", "--out-dir", type=Path, default=None,
                        help="write one file per (format, target) "
                             "instead of stdout")
    parser.add_argument("--list", action="store_true",
                        help="only list discovered formats")
    parser.add_argument("--validate", metavar="INSTANCE",
                        help="validate an XML instance document "
                             "against the schema instead of "
                             "generating (reports the matching "
                             "format)")
    return parser


def _load(source: str) -> XMIT:
    xmit = XMIT()
    if ":" in source and not Path(source).exists():
        xmit.load_url(source)
    else:
        path = Path(source)
        xmit.load_text(path.read_text(encoding="utf-8"))
    return xmit


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        xmit = _load(args.source)
    except (ReproError, OSError) as exc:
        print(f"xmitgen: cannot load {args.source}: {exc}",
              file=sys.stderr)
        return 1

    names = list(xmit.format_names)
    if args.validate:
        try:
            instance = Path(args.validate).read_bytes()
        except OSError as exc:
            print(f"xmitgen: {exc}", file=sys.stderr)
            return 1
        if args.formats:
            # explicit format: validate strictly against it
            from repro.schema.validator import load_instance
            from repro.xmlcore.parser import parse_bytes
            from repro.errors import SchemaValidationError
            target = args.formats[0]
            try:
                record = load_instance(
                    xmit._reconstruct_schema(), target,
                    parse_bytes(instance).root)
            except (ReproError, SchemaValidationError) as exc:
                print(f"INVALID against {target}: {exc}")
                return 2
            print(f"VALID: {target} ({len(record)} fields)")
            return 0
        matched = xmit.match_message(instance)
        if matched is None:
            print("INVALID: matches no loaded format")
            return 2
        print(f"VALID: matches {matched}")
        return 0
    if args.list:
        for name in names:
            fields = xmit.ir.format(name).field_names()
            print(f"{name}: {', '.join(fields)}")
        return 0

    selected = args.formats or names
    unknown = set(selected) - set(names)
    if unknown:
        print(f"xmitgen: unknown formats {sorted(unknown)}; "
              f"document defines {names}", file=sys.stderr)
        return 1
    targets = args.target or ["c"]
    assert set(available_targets()) >= set(targets)

    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
    for name in selected:
        for target in targets:
            source = xmit.bind(name, target=target).artifact
            if args.out_dir is None:
                print(f"// ===== {name} [{target}] =====")
                print(source)
            else:
                path = args.out_dir / f"{name}.{_EXTENSIONS[target]}"
                path.write_text(source, encoding="utf-8")
                print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
