"""Developer tools built on the library.

* :mod:`repro.tools.inspect`  -- wire-record inspector: annotated
  hexdump of a PBIO record against its format metadata (the kind of
  debugging aid a production BCM ships with);
* :mod:`repro.tools.xmitgen`  -- command-line metadata generator: the
  XMIT analog of an IDL compiler, rendering XSD documents to any
  source target (``python -m repro.tools.xmitgen``);
* :mod:`repro.tools.obsdump`  -- telemetry dumper: render the
  :mod:`repro.obs` registry as Prometheus text or JSON, from this
  process, a live ``/metrics.json`` endpoint, or a fresh hydrology
  pipeline run (``python -m repro.tools.obsdump --pipeline``).
"""

from repro.tools.inspect import describe_format, dump_record

__all__ = ["describe_format", "dump_record"]
