"""Developer tools built on the library.

* :mod:`repro.tools.inspect`  -- wire-record inspector: annotated
  hexdump of a PBIO record against its format metadata (the kind of
  debugging aid a production BCM ships with);
* :mod:`repro.tools.xmitgen`  -- command-line metadata generator: the
  XMIT analog of an IDL compiler, rendering XSD documents to any
  source target (``python -m repro.tools.xmitgen``).
"""

from repro.tools.inspect import describe_format, dump_record

__all__ = ["describe_format", "dump_record"]
