"""obsdump — dump the telemetry registry, live or in-process.

Three sources, one output (Prometheus text by default, ``--json`` for
the JSON snapshot):

* no flags — the current process's registry.  Mostly useful with
  ``--pipeline``, which runs the hydrology broadcast pipeline first so
  there is something to show;
* ``--url http://host:port`` — scrape a running
  :class:`~repro.http.server.MetadataHTTPServer`'s ``/metrics.json``
  and re-render locally.  Repeatable: with several ``--url`` flags
  (one per shard worker of a sharded deployment) the snapshots are
  merged — every series gains a ``worker`` label naming its origin
  (``w0``, ``w1``, … in flag order; pass ``--url label=http://…`` to
  choose the label) — and ``--aggregate`` collapses them to
  fleet-wide totals (sum counters, max ``*_high_water``, merge
  log-bucket histograms);
* ``--pipeline`` — run ``run_publisher_pipeline`` (size it with
  ``--subscribers/--timesteps/--grid``), then dump what the run left
  in the registry, including the live RDM reading
  (:func:`repro.obs.spans.rdm_from_snapshot`).

Usage::

    python -m repro.tools.obsdump --pipeline
    python -m repro.tools.obsdump --url http://127.0.0.1:8000 --json
    python -m repro.tools.obsdump --url http://127.0.0.1:9100 \\
        --url http://127.0.0.1:9101 --aggregate
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.request

from repro import obs


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="obsdump",
        description="Dump the repro telemetry registry.")
    output = parser.add_mutually_exclusive_group()
    output.add_argument("--prom", action="store_true",
                        help="Prometheus text exposition (default)")
    output.add_argument("--json", action="store_true",
                        help="JSON snapshot instead of Prometheus "
                             "text")
    parser.add_argument("--url", action="append", default=None,
                        metavar="[LABEL=]URL",
                        help="scrape a running metadata server's "
                             "/metrics.json instead of this process; "
                             "repeat for sharded workers — snapshots "
                             "merge under per-endpoint worker labels")
    parser.add_argument("--aggregate", action="store_true",
                        help="with multiple --url: collapse the "
                             "merged snapshot to fleet-wide totals "
                             "(drop worker labels, sum counters, max "
                             "high-water gauges, merge histograms)")
    parser.add_argument("--pipeline", action="store_true",
                        help="run the hydrology broadcast pipeline "
                             "first, then dump")
    parser.add_argument("--subscribers", type=int, default=4,
                        help="pipeline subscribers (default 4)")
    parser.add_argument("--timesteps", type=int, default=8,
                        help="pipeline timesteps (default 8)")
    parser.add_argument("--grid", type=int, default=32,
                        help="pipeline grid edge (default 32)")
    parser.add_argument("--rdm", action="store_true",
                        help="append the live RDM reading as a "
                             "comment block")
    return parser


def _fetch_snapshot(url: str) -> dict:
    if not url.endswith("/metrics.json"):
        url = url.rstrip("/") + "/metrics.json"
    with urllib.request.urlopen(url, timeout=10) as response:
        return obs.parse_json(response.read())


def _split_endpoint(spec: str, index: int) -> tuple[str, str]:
    """``label=url`` or bare ``url`` (labeled ``w<index>``)."""
    label, sep, url = spec.partition("=")
    if sep and label and "://" not in label:
        return label, url
    return f"w{index}", spec


def fetch_endpoints(specs: list[str]) -> dict[str, dict]:
    """Scrape every endpoint; returns label -> snapshot."""
    snapshots: dict[str, dict] = {}
    for index, spec in enumerate(specs):
        label, url = _split_endpoint(spec, index)
        snapshots[label] = _fetch_snapshot(url)
    return snapshots


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.pipeline:
        from repro.hydrology.pipeline import run_publisher_pipeline
        obs.configure(sample_mask=0)  # time every codec op: exact RDM
        run_publisher_pipeline(subscribers=args.subscribers,
                               timesteps=args.timesteps,
                               grid=args.grid)
    if args.url and len(args.url) > 1:
        snapshot = obs.merge_snapshots(fetch_endpoints(args.url))
        if args.aggregate:
            snapshot = obs.aggregate_snapshot(snapshot)
    elif args.url:
        snapshot = _fetch_snapshot(
            _split_endpoint(args.url[0], 0)[1])
    else:
        snapshot = obs.snapshot()
    if args.json:
        sys.stdout.write(obs.render_json(snapshot))
    else:
        sys.stdout.write(obs.render_prometheus(snapshot))
    if args.rdm or args.pipeline:
        reading = obs.rdm_from_snapshot(snapshot)
        sys.stdout.write("# rdm " + json.dumps(reading) + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised as a CLI
    raise SystemExit(main())
