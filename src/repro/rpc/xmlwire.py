"""XML-RPC-style message encoding.

Implements the call/response/fault document shapes of the XML-RPC
specification (reference [9] of the paper) on our own XML substrate:

* ``<methodCall><methodName/><params><param><value>...`` for calls,
* ``<methodResponse><params>...`` for results,
* ``<methodResponse><fault><value><struct>...`` for faults.

Value typing follows XML-RPC: ``<int>``, ``<double>``, ``<string>``,
``<boolean>``, ``<array><data>``, ``<struct><member>``.  Like the real
protocol, every value pays ASCII conversion and markup framing — this
codec is the "self-describing but slow" end of the RPC comparison.
"""

from __future__ import annotations

from repro.errors import WireFormatError
from repro.xmlcore.builder import DocumentBuilder
from repro.xmlcore.dom import Element
from repro.xmlcore.parser import parse
from repro.xmlcore.serializer import serialize


# ---------------------------------------------------------------------------
# value encoding
# ---------------------------------------------------------------------------

def _encode_value(builder: DocumentBuilder, value) -> None:
    with builder.element("value"):
        if isinstance(value, bool):
            builder.leaf("boolean", "1" if value else "0")
        elif isinstance(value, int):
            builder.leaf("int", value)
        elif isinstance(value, float):
            builder.leaf("double", repr(value))
        elif isinstance(value, str):
            builder.leaf("string", value)
        elif value is None:
            builder.leaf("nil")
        elif isinstance(value, dict):
            with builder.element("struct"):
                for name, member in value.items():
                    with builder.element("member"):
                        builder.leaf("name", name)
                        _encode_value(builder, member)
        elif hasattr(value, "__iter__"):
            with builder.element("array"):
                with builder.element("data"):
                    for item in value:
                        _encode_value(builder, item)
        else:
            raise WireFormatError(
                f"XML-RPC cannot represent {type(value).__name__}")


def _decode_value(value_elem: Element):
    children = list(value_elem)
    if not children:
        return value_elem.text_content()  # bare string form
    typed = children[0]
    tag = typed.local_name
    text = typed.text_content()
    if tag in ("int", "i4"):
        return int(text)
    if tag == "double":
        return float(text)
    if tag == "boolean":
        return text.strip() == "1"
    if tag == "string":
        return text
    if tag == "nil":
        return None
    if tag == "struct":
        record = {}
        for member in typed:
            name_elem = member.find("name")
            val_elem = member.find("value")
            if name_elem is None or val_elem is None:
                raise WireFormatError("malformed struct member")
            record[name_elem.text_content()] = _decode_value(val_elem)
        return record
    if tag == "array":
        data = typed.find("data")
        if data is None:
            raise WireFormatError("malformed array (no data element)")
        return [_decode_value(v) for v in data.find_all("value")]
    raise WireFormatError(f"unknown XML-RPC value type <{tag}>")


# ---------------------------------------------------------------------------
# message encoding
# ---------------------------------------------------------------------------

def encode_call(method: str, params: list) -> bytes:
    builder = DocumentBuilder()
    with builder.element("methodCall"):
        builder.leaf("methodName", method)
        with builder.element("params"):
            for param in params:
                with builder.element("param"):
                    _encode_value(builder, param)
    return serialize(builder.document(namespaces=False),
                     xml_declaration=True).encode("utf-8")


def encode_response(result) -> bytes:
    builder = DocumentBuilder()
    with builder.element("methodResponse"):
        with builder.element("params"):
            with builder.element("param"):
                _encode_value(builder, result)
    return serialize(builder.document(namespaces=False),
                     xml_declaration=True).encode("utf-8")


def encode_fault(code: int, message: str) -> bytes:
    builder = DocumentBuilder()
    with builder.element("methodResponse"):
        with builder.element("fault"):
            _encode_value(builder, {"faultCode": code,
                                    "faultString": message})
    return serialize(builder.document(namespaces=False),
                     xml_declaration=True).encode("utf-8")


def decode_call(data: bytes) -> tuple[str, list]:
    root = parse(data.decode("utf-8"), namespaces=False).root
    if root.tag != "methodCall":
        raise WireFormatError(f"expected methodCall, got <{root.tag}>")
    name_elem = root.find("methodName")
    if name_elem is None:
        raise WireFormatError("methodCall without methodName")
    params_elem = root.find("params")
    params = []
    if params_elem is not None:
        for param in params_elem.find_all("param"):
            value = param.find("value")
            if value is None:
                raise WireFormatError("param without value")
            params.append(_decode_value(value))
    return name_elem.text_content(), params


def decode_response(data: bytes):
    """Returns the result value; raises the fault as
    ``(code, message)`` inside :class:`WireFormatError` subclasses is
    left to the endpoint layer — here a fault returns a dict under the
    key ``"__fault__"``."""
    root = parse(data.decode("utf-8"), namespaces=False).root
    if root.tag != "methodResponse":
        raise WireFormatError(
            f"expected methodResponse, got <{root.tag}>")
    fault = root.find("fault")
    if fault is not None:
        value = fault.find("value")
        detail = _decode_value(value) if value is not None else {}
        return {"__fault__": detail}
    params = root.find("params")
    if params is None:
        raise WireFormatError("methodResponse without params or fault")
    param = params.find("param")
    value = param.find("value") if param is not None else None
    if value is None:
        raise WireFormatError("malformed methodResponse")
    return _decode_value(value)


class XMLRPCCodec:
    """Protocol adapter used by the RPC endpoints."""

    protocol_name = "xml"

    def encode_call(self, method: str, params: dict) -> bytes:
        # XML-RPC positional params carry the record as one struct,
        # preserving field names (the common 'named args' convention)
        return encode_call(method, [params])

    def decode_call(self, data: bytes) -> tuple[str, dict]:
        method, params = decode_call(data)
        if len(params) != 1 or not isinstance(params[0], dict):
            raise WireFormatError(
                "expected a single struct parameter")
        return method, params[0]

    def encode_reply(self, method: str, result: dict) -> bytes:
        del method
        return encode_response(result)

    def encode_fault(self, code: int, message: str) -> bytes:
        return encode_fault(code, message)

    def decode_reply(self, method: str, data: bytes):
        del method
        return decode_response(data)
