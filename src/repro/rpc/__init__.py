"""RPC interfaces over XMIT metadata.

Section 3.2 lists planned BCM integrations beyond PBIO and Java:
"We plan to implement SOAP/XML-RPC style interfaces and also IIOP."
This package delivers the XML-RPC-style interface — and, in the spirit
of the whole paper, a binary twin:

* :mod:`repro.rpc.xmlwire`  -- classic XML-RPC message encoding
  (``methodCall``/``methodResponse``/``fault`` documents built on our
  own DOM), self-describing ASCII on the wire;
* :mod:`repro.rpc.binwire`  -- "XMIT-RPC": the same call/reply/fault
  protocol, but parameters and results are records of XML-*discovered*
  formats marshaled with PBIO — open metadata, binary wire;
* :mod:`repro.rpc.endpoints` -- :class:`RPCServer` / :class:`RPCClient`
  over any :class:`~repro.transport.base.Channel`, parameterized by
  protocol, so the two wire formats are benchmarkable head to head
  (see ``benchmarks/test_ext_rpc.py``).
"""

from repro.rpc.xmlwire import (
    XMLRPCCodec,
    decode_call,
    decode_response,
    encode_call,
    encode_fault,
    encode_response,
)
from repro.rpc.binwire import BinaryRPCCodec
from repro.rpc.soapwire import SOAPCodec
from repro.rpc.endpoints import RPCClient, RPCFault, RPCServer

__all__ = [
    "BinaryRPCCodec",
    "SOAPCodec",
    "RPCClient",
    "RPCFault",
    "RPCServer",
    "XMLRPCCodec",
    "decode_call",
    "decode_response",
    "encode_call",
    "encode_fault",
    "encode_response",
]
