"""RPC endpoints over transport channels.

:class:`RPCServer` dispatches incoming calls to registered handlers;
:class:`RPCClient` issues synchronous calls.  Both are parameterized
by a protocol codec (:class:`~repro.rpc.xmlwire.XMLRPCCodec` or
:class:`~repro.rpc.binwire.BinaryRPCCodec`), so an application can
switch wire formats without touching handler code — the same
separation of metadata from mechanism the rest of the library
practices.

Wire envelope (inside transport DATA frames)::

    u8 kind (1=call, 2=reply, 3=fault) | u32 id | u16 len | method | payload

The method name rides in the envelope for both protocols so replies
can be validated; ``id`` correlates replies on pipelined connections.
"""

from __future__ import annotations

import itertools
import struct
import threading
from typing import Callable

from repro.errors import ProtocolError, WireFormatError
from repro.transport.base import Channel
from repro.transport.messages import Frame, FrameType

_ENVELOPE = struct.Struct(">BIH")
_CALL, _REPLY, _FAULT = 1, 2, 3


class RPCFault(Exception):
    """A remote handler failed; carries the peer's fault record."""

    def __init__(self, code: int, message: str) -> None:
        self.code = code
        self.message = message
        super().__init__(f"RPC fault {code}: {message}")


def _pack(kind: int, call_id: int, method: str,
          payload: bytes) -> bytes:
    name = method.encode("utf-8")
    return _ENVELOPE.pack(kind, call_id, len(name)) + name + payload


def _unpack(data: bytes) -> tuple[int, int, str, bytes]:
    if len(data) < _ENVELOPE.size:
        raise ProtocolError("truncated RPC envelope")
    kind, call_id, name_len = _ENVELOPE.unpack_from(data)
    start = _ENVELOPE.size
    name = data[start:start + name_len].decode("utf-8")
    return kind, call_id, name, data[start + name_len:]


Handler = Callable[[dict], dict]


class RPCServer:
    """Dispatches calls arriving on a channel to named handlers."""

    def __init__(self, codec, channel: Channel) -> None:
        self.codec = codec
        self.channel = channel
        self._handlers: dict[str, Handler] = {}
        self.calls_served = 0
        self.faults_returned = 0

    def register(self, method: str, handler: Handler) -> None:
        self._handlers[method] = handler

    def method_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._handlers))

    def serve_one(self, timeout: float | None = None) -> bool:
        """Handle one call; False when the channel closed."""
        frame = self.channel.recv(timeout)
        if frame is None:
            return False
        if frame.type != FrameType.DATA:
            return True  # ignore HELLO/BYE noise
        kind, call_id, method, payload = _unpack(frame.payload)
        if kind != _CALL:
            raise ProtocolError(f"server received kind {kind}")
        try:
            handler = self._handlers.get(method)
            if handler is None:
                raise LookupError(f"no such method {method!r}")
            wire_method, params = self.codec.decode_call(payload)
            if wire_method != method:
                raise WireFormatError(
                    f"envelope says {method!r}, payload says "
                    f"{wire_method!r}")
            result = handler(params)
            reply = self.codec.encode_reply(method, result)
            self.channel.send(Frame(FrameType.DATA,
                                    _pack(_REPLY, call_id, method,
                                          reply)))
            self.calls_served += 1
        except Exception as exc:
            fault = self.codec.encode_fault(1, f"{type(exc).__name__}: "
                                               f"{exc}")
            self.channel.send(Frame(FrameType.DATA,
                                    _pack(_FAULT, call_id, method,
                                          fault)))
            self.faults_returned += 1
        return True

    def serve_forever(self, timeout: float | None = None) -> None:
        while self.serve_one(timeout):
            pass

    def serve_in_thread(self) -> threading.Thread:
        thread = threading.Thread(target=self.serve_forever,
                                  daemon=True, name="rpc-server")
        thread.start()
        return thread


class RPCClient:
    """Synchronous caller."""

    def __init__(self, codec, channel: Channel) -> None:
        self.codec = codec
        self.channel = channel
        self._ids = itertools.count(1)

    def call(self, method: str, params: dict,
             timeout: float | None = 30.0) -> dict:
        call_id = next(self._ids)
        payload = self.codec.encode_call(method, params)
        self.channel.send(Frame(FrameType.DATA,
                                _pack(_CALL, call_id, method,
                                      payload)))
        while True:
            frame = self.channel.recv(timeout)
            if frame is None:
                raise ProtocolError(
                    "connection closed awaiting RPC reply")
            if frame.type != FrameType.DATA:
                continue
            kind, reply_id, reply_method, body = _unpack(frame.payload)
            if reply_id != call_id:
                continue  # stale reply from an abandoned call
            if reply_method != method:
                raise ProtocolError(
                    f"reply names method {reply_method!r}, "
                    f"expected {method!r}")
            result = self.codec.decode_reply(method, body)
            if isinstance(result, dict) and "__fault__" in result:
                detail = result["__fault__"]
                raise RPCFault(int(detail.get("faultCode", 0)),
                               str(detail.get("faultString", "")))
            if kind == _FAULT:
                raise RPCFault(0, "peer signalled fault")
            return result

    def close(self) -> None:
        self.channel.close()
