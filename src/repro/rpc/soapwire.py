"""SOAP-style message encoding.

The other half of section 3.2's "SOAP/XML-RPC style interfaces": a
SOAP 1.1-shaped envelope codec.  Calls are

.. code-block:: xml

    <soap:Envelope xmlns:soap=".../envelope/">
      <soap:Body>
        <m:stats xmlns:m="urn:xmit-rpc">
          <values>1.5</values>
          <values>2.5</values>
        </m:stats>
      </soap:Body>
    </soap:Envelope>

with document/literal-style parameter elements (one element per field,
repeated for arrays — the same shape as the paper's Fig. 1 XML), and
faults are standard ``soap:Fault`` bodies.  Values are typed
syntactically on decode (int -> float -> string fallback), as
2001-era doc/lit endpoints did without a schema in hand.
"""

from __future__ import annotations

from repro.errors import WireFormatError
from repro.xmlcore.builder import DocumentBuilder
from repro.xmlcore.dom import Element
from repro.xmlcore.parser import parse
from repro.xmlcore.serializer import serialize

SOAP_NS = "http://schemas.xmlsoap.org/soap/envelope/"
METHOD_NS = "urn:xmit-rpc"


def _encode_params(builder: DocumentBuilder, params: dict) -> None:
    for name, value in params.items():
        if isinstance(value, dict):
            with builder.element(name):
                _encode_params(builder, value)
        elif isinstance(value, (list, tuple)) or (
                hasattr(value, "__iter__")
                and not isinstance(value, str)):
            for item in value:
                if isinstance(item, dict):
                    with builder.element(name):
                        _encode_params(builder, item)
                else:
                    builder.leaf(name, _text(item))
        elif value is None:
            builder.leaf(name)
        else:
            builder.leaf(name, _text(value))


def _text(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return repr(value)
    return str(value)


def _decode_value(text: str):
    stripped = text.strip()
    if stripped == "true":
        return True
    if stripped == "false":
        return False
    try:
        return int(stripped)
    except ValueError:
        pass
    try:
        return float(stripped)
    except ValueError:
        pass
    return text


def _decode_params(elem: Element) -> dict:
    groups: dict[str, list] = {}
    for child in elem:
        if len(child):  # has element children -> nested struct
            value = _decode_params(child)
        else:
            value = _decode_value(child.text_content())
        groups.setdefault(child.local_name, []).append(value)
    record: dict = {}
    for name, values in groups.items():
        record[name] = values if len(values) > 1 else values[0]
    return record


class SOAPCodec:
    """Protocol adapter: SOAP 1.1-style envelopes.

    Because doc/lit decoding is syntactic, a single-element array
    decodes as a scalar; ``array_fields`` names fields that must
    always come back as lists.
    """

    protocol_name = "soap"

    def __init__(self, array_fields: set[str] | None = None) -> None:
        self.array_fields = frozenset(array_fields or ())

    # -- encode ------------------------------------------------------------

    def _envelope(self, fill) -> bytes:
        builder = DocumentBuilder()
        with builder.element("soap:Envelope",
                             {"xmlns:soap": SOAP_NS}):
            with builder.element("soap:Body"):
                fill(builder)
        return serialize(builder.document(),
                         xml_declaration=True).encode("utf-8")

    def encode_call(self, method: str, params: dict) -> bytes:
        def fill(builder: DocumentBuilder) -> None:
            with builder.element(f"m:{method}", {"xmlns:m": METHOD_NS}):
                _encode_params(builder, params)
        return self._envelope(fill)

    def encode_reply(self, method: str, result: dict) -> bytes:
        def fill(builder: DocumentBuilder) -> None:
            with builder.element(f"m:{method}Response",
                                 {"xmlns:m": METHOD_NS}):
                _encode_params(builder, result)
        return self._envelope(fill)

    def encode_fault(self, code: int, message: str) -> bytes:
        def fill(builder: DocumentBuilder) -> None:
            with builder.element("soap:Fault"):
                builder.leaf("faultcode", f"soap:Server.{code}")
                builder.leaf("faultstring", message)
        return self._envelope(fill)

    # -- decode ------------------------------------------------------------

    def _body(self, data: bytes) -> Element:
        root = parse(data.decode("utf-8")).root
        if root.local_name != "Envelope" or root.namespace != SOAP_NS:
            raise WireFormatError("not a SOAP envelope")
        body = root.find("Body", namespace=SOAP_NS)
        if body is None or not len(body):
            raise WireFormatError("SOAP envelope without a body")
        return next(iter(body))

    def decode_call(self, data: bytes) -> tuple[str, dict]:
        operation = self._body(data)
        return operation.local_name, self._fix_arrays(
            _decode_params(operation))

    def decode_reply(self, method: str, data: bytes):
        operation = self._body(data)
        if operation.local_name == "Fault":
            code_elem = operation.find("faultcode")
            code_text = (code_elem.text_content()
                         if code_elem is not None else "")
            code = code_text.rpartition(".")[2]
            message_elem = operation.find("faultstring")
            message = (message_elem.text_content()
                       if message_elem is not None else "")
            return {"__fault__": {
                "faultCode": int(code) if code.isdigit() else 0,
                "faultString": message}}
        expected = f"{method}Response"
        if operation.local_name != expected:
            raise WireFormatError(
                f"reply names {operation.local_name!r}, expected "
                f"{expected!r}")
        return self._fix_arrays(_decode_params(operation))

    def _fix_arrays(self, record: dict) -> dict:
        for name in self.array_fields:
            if name in record and not isinstance(record[name], list):
                record[name] = [record[name]]
        return record
