"""XMIT-RPC: binary remote calls with XML-discovered signatures.

Applies the paper's thesis at the RPC layer: method signatures are
XML Schema complexTypes (one for the parameter record, one for the
result record), discovered through XMIT like any other format, while
the call payloads themselves travel as PBIO binary records.

A method ``m`` is described by two formats named ``<m>Params`` and
``<m>Result`` in the signature document.  Faults reuse a built-in
``RPCFaultRecord`` format.
"""

from __future__ import annotations

from repro.core.toolkit import XMIT
from repro.errors import WireFormatError
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer

#: the fault record every binary endpoint registers.
FAULT_XSD = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="RPCFaultRecord">
    <xsd:element name="faultCode" type="xsd:int" />
    <xsd:element name="faultString" type="xsd:string" />
  </xsd:complexType>
</xsd:schema>
"""

FAULT_FORMAT = "RPCFaultRecord"


class BinaryRPCCodec:
    """Protocol adapter: PBIO-encoded calls/replies/faults.

    ``signature_source`` is XSD text or a URL (``mem:``/``file:``/
    ``http:``) declaring ``<method>Params`` / ``<method>Result``
    complexTypes for every method the endpoint uses.
    """

    protocol_name = "pbio"

    def __init__(self, signature_source: str) -> None:
        self.xmit = XMIT()
        if signature_source.lstrip().startswith("<"):
            self.xmit.load_text(signature_source)
        else:
            self.xmit.load_url(signature_source)
        self.xmit.load_text(FAULT_XSD)
        self.context = IOContext(format_server=FormatServer())
        for name in self.xmit.format_names:
            self.xmit.register_with_context(self.context, name)

    # -- format names -----------------------------------------------------

    @staticmethod
    def params_format(method: str) -> str:
        return f"{method}Params"

    @staticmethod
    def result_format(method: str) -> str:
        return f"{method}Result"

    def methods(self) -> tuple[str, ...]:
        """Method names implied by the loaded signature formats."""
        names = set(self.xmit.format_names)
        return tuple(sorted(
            name[:-6] for name in names
            if name.endswith("Params")
            and f"{name[:-6]}Result" in names))

    # -- protocol adapter ---------------------------------------------------

    def encode_call(self, method: str, params: dict) -> bytes:
        return self._encode(self.params_format(method), params, method)

    def decode_call(self, data: bytes) -> tuple[str, dict]:
        decoded = self.context.decode(data)
        if not decoded.format_name.endswith("Params"):
            raise WireFormatError(
                f"call payload has format {decoded.format_name!r}, "
                "not a *Params record")
        return decoded.format_name[:-6], decoded.record

    def encode_reply(self, method: str, result: dict) -> bytes:
        return self._encode(self.result_format(method), result, method)

    def encode_fault(self, code: int, message: str) -> bytes:
        return self.context.encode(FAULT_FORMAT, {
            "faultCode": code, "faultString": message})

    def decode_reply(self, method: str, data: bytes):
        decoded = self.context.decode(data)
        if decoded.format_name == FAULT_FORMAT:
            return {"__fault__": decoded.record}
        expected = self.result_format(method)
        if decoded.format_name != expected:
            raise WireFormatError(
                f"reply format {decoded.format_name!r} does not match "
                f"expected {expected!r}")
        return decoded.record

    def _encode(self, format_name: str, record: dict,
                method: str) -> bytes:
        try:
            return self.context.encode(format_name, record)
        except Exception as exc:
            raise WireFormatError(
                f"method {method!r}: cannot encode {format_name}: "
                f"{exc}") from exc
