"""Fixed-width tables and series for benchmark output.

The benchmarks print the same rows/series the paper's figures plot;
these helpers keep that output uniform and diff-friendly
(EXPERIMENTS.md embeds it verbatim).
"""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(headers: Sequence[str],
                 rows: Iterable[Sequence[object]], *,
                 title: str | None = None) -> str:
    """Render an aligned ASCII table."""
    str_rows = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines: list[str] = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.rjust(w)
                                for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: Sequence[str],
                rows: Iterable[Sequence[object]], *,
                title: str | None = None) -> None:
    print()
    print(format_table(headers, rows, title=title))


def print_series(name: str, points: Iterable[tuple[object, object]], *,
                 x_label: str = "x", y_label: str = "y") -> None:
    """Print one figure series as aligned (x, y) pairs."""
    print()
    print(f"series: {name}")
    print_table([x_label, y_label], points)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.0001:
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".")
    return str(value)
