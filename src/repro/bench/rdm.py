"""The Remote Discovery Multiplier (section 4.2).

    "We define the Remote Discovery Multiplier (RDM) as the ratio of
    the time needed by XMIT to register a message format with respect
    to the time needed by PBIO to register the same format using
    compiled-in metadata."

Both paths are measured end to end, each against a fresh
:class:`~repro.pbio.context.IOContext` and
:class:`~repro.pbio.format_server.FormatServer` per call:

* **XMIT path**: parse the XML schema document, compile to IR, generate
  PBIO metadata (layout + IOFormat), register — "format registration
  time for XMIT includes the time necessary to parse the XML
  description of the format and register the format with PBIO";
* **PBIO path**: build the format from compiled-in field specs and
  register.

The document is held in memory (``mem:`` discovery), matching the
paper's measurement, which excludes network fetch time from the RDM.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.timing import TimingResult, time_callable
from repro.core.schema_compiler import compile_schema
from repro.core.targets.pbio_target import PBIOTarget
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.machine import Architecture, NATIVE
from repro.schema.parser import parse_schema
from repro.xmlcore.parser import parse as parse_xml


@dataclass(frozen=True)
class RDMResult:
    """One format's registration-cost comparison."""

    format_name: str
    structure_size: int       # native struct bytes (paper's x axis)
    encoded_size: int | None  # marshal output bytes, when sampled
    pbio: TimingResult
    xmit: TimingResult

    @property
    def rdm(self) -> float:
        return self.xmit.best / self.pbio.best


def xmit_register(xsd_text: str, format_name: str,
                  architecture: Architecture = NATIVE) -> IOContext:
    """The full XMIT registration path, uncached (one measurement)."""
    doc = parse_xml(xsd_text)
    schema = parse_schema(doc)
    ir = compile_schema(schema)
    token = PBIOTarget().generate(ir, format_name,
                                  architecture=architecture)
    ctx = IOContext(architecture=architecture,
                    format_server=FormatServer())
    ctx.register(token.artifact)
    return ctx


def pbio_register(specs, format_name: str,
                  architecture: Architecture = NATIVE,
                  subformats=None) -> IOContext:
    """The compiled-in registration path (one measurement)."""
    ctx = IOContext(architecture=architecture,
                    format_server=FormatServer())
    ctx.register_layout(format_name, specs, subformats=subformats)
    return ctx


def build_subformats(subformat_specs: dict[str, list],
                     architecture: Architecture = NATIVE) -> dict:
    """Lay out nested struct specs in declaration order (dependencies
    must precede dependents, as in C source)."""
    from repro.pbio.layout import field_list_for
    subformats: dict = {}
    for name, sub_specs in subformat_specs.items():
        subformats[name] = field_list_for(
            sub_specs, architecture=architecture,
            subformats=dict(subformats))
    return subformats


def measure_rdm(xsd_text: str, format_name: str, specs, *,
                architecture: Architecture = NATIVE,
                sample_record: dict | None = None,
                subformat_specs: dict[str, list] | None = None,
                repeat: int = 5) -> RDMResult:
    """Measure the RDM for one format.

    ``specs`` is the compiled-in field-spec list; ``subformat_specs``
    supplies nested struct specs for composition-heavy formats.
    ``sample_record``, when given, is marshaled once to report the
    paper's "Encoded Size" column.
    """
    subformats = build_subformats(subformat_specs, architecture) \
        if subformat_specs else None

    pbio_time = time_callable(
        lambda: pbio_register(specs, format_name, architecture,
                              subformats), repeat=repeat)
    xmit_time = time_callable(
        lambda: xmit_register(xsd_text, format_name, architecture),
        repeat=repeat)

    ctx = pbio_register(specs, format_name, architecture, subformats)
    structure_size = ctx.lookup_format(format_name) \
        .field_list.record_length
    encoded_size = None
    if sample_record is not None:
        encoded_size = ctx.encoded_size(format_name, sample_record)
    return RDMResult(format_name=format_name,
                     structure_size=structure_size,
                     encoded_size=encoded_size,
                     pbio=pbio_time, xmit=xmit_time)


def measure_rdm_suite(cases, *, architecture: Architecture = NATIVE,
                      repeat: int = 5) -> list[RDMResult]:
    """Measure a list of cases: dicts with keys ``xsd``, ``name``,
    ``specs`` and optionally ``record``/``subformats``."""
    results = []
    for case in cases:
        results.append(measure_rdm(
            case["xsd"], case["name"], case["specs"],
            architecture=architecture,
            sample_record=case.get("record"),
            subformat_specs=case.get("subformats"),
            repeat=repeat))
    return results
