"""Workload structures for the paper's experiments.

Three families:

* **Proof-of-concept structures** (Fig. 3): three structs whose ILP32
  sizes bracket the paper's 32 / 52 / 180 bytes, the largest
  "constructed primarily of composing other structures" as the paper
  describes;
* **Hydrology structures** (Figs. 6, 7): re-exported from
  :mod:`repro.hydrology.formats` with sample records sized to the
  paper's encoded-size axis (including the 65536-float ``SimpleData``
  frame behind the 262176-byte point of Fig. 7);
* **Payload sweeps** (Figs. 1, 8): ``SimpleData`` records whose binary
  encoding hits a requested byte budget.

Every case carries both the XSD text (XMIT discovery path) and the
compiled-in PBIO field specs, so the two registration paths operate on
identical formats.
"""

from __future__ import annotations

import numpy as np

from repro.hydrology.formats import (
    GAUGE_COUNT, hydrology_field_specs, hydrology_xsd_for,
)
from repro.pbio.machine import Architecture, NATIVE

# ---------------------------------------------------------------------------
# proof-of-concept structures (Fig. 3)
# ---------------------------------------------------------------------------

#: Per-type XSD fragments; cases assemble minimal documents so the
#: XMIT path parses only what the format needs (as the paper's
#: per-format documents did).
_POC_FRAGMENTS: dict[str, str] = {
    "SensorReading": """\
  <xsd:complexType name="SensorReading">
    <xsd:element name="label" type="xsd:string" />
    <xsd:element name="id" type="xsd:int" />
    <xsd:element name="seq" type="xsd:int" />
    <xsd:element name="value" type="xsd:float" />
    <xsd:element name="timestamp" type="xsd:double" />
    <xsd:element name="flags" type="xsd:int" />
  </xsd:complexType>
""",
    "SensorGroup": """\
  <xsd:complexType name="SensorGroup">
    <xsd:element name="name" type="xsd:string" />
    <xsd:element name="count" type="xsd:int" />
    <xsd:element name="values" type="xsd:float" maxOccurs="8" />
    <xsd:element name="flags" type="xsd:int" />
    <xsd:element name="checksum" type="xsd:unsignedInt" />
    <xsd:element name="mode" type="xsd:int" />
  </xsd:complexType>
""",
    "Point": """\
  <xsd:complexType name="Point">
    <xsd:element name="x" type="xsd:double" />
    <xsd:element name="y" type="xsd:double" />
  </xsd:complexType>
""",
    "Extent": """\
  <xsd:complexType name="Extent">
    <xsd:element name="min" type="Point" />
    <xsd:element name="max" type="Point" />
  </xsd:complexType>
""",
    "RegionHeader": """\
  <xsd:complexType name="RegionHeader">
    <xsd:element name="tag" type="xsd:string" />
    <xsd:element name="version" type="xsd:int" />
    <xsd:element name="stamp" type="xsd:unsignedInt" />
    <xsd:element name="seq" type="xsd:int" />
  </xsd:complexType>
""",
    "RegionUpdate": """\
  <xsd:complexType name="RegionUpdate">
    <xsd:element name="hdr" type="RegionHeader" />
    <xsd:element name="bounds" type="Extent" />
    <xsd:element name="origin" type="Point" />
    <xsd:element name="centroid" type="Point" />
    <xsd:element name="clip" type="Extent" />
    <xsd:element name="trailer" type="RegionHeader" />
    <xsd:element name="scale" type="xsd:double" />
    <xsd:element name="weights" type="xsd:float" maxOccurs="11" />
  </xsd:complexType>
""",
}


def xsd_for(*type_names: str) -> str:
    """Assemble a schema document containing exactly *type_names*."""
    body = "".join(_POC_FRAGMENTS[name] for name in type_names)
    return ('<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">\n'
            + body + "</xsd:schema>\n")


#: The full proof-of-concept document (all six types together).
POC_SCHEMA_XSD = xsd_for("SensorReading", "SensorGroup", "Point",
                         "Extent", "RegionHeader", "RegionUpdate")

#: subformat field specs shared by the PBIO path of the POC cases.
POC_SUBFORMAT_SPECS: dict[str, list] = {
    "Point": [("x", "double", 8), ("y", "double", 8)],
    "Extent": [("min", "Point"), ("max", "Point")],
    "RegionHeader": [("tag", "string"), ("version", "integer", 4),
                     ("stamp", "unsigned integer", 4),
                     ("seq", "integer", 4)],
}

# Extent depends on Point; keep an explicit order for layout.
POC_SUBFORMAT_ORDER = ("Point", "Extent", "RegionHeader")


def poc_cases() -> list[dict]:
    """The Fig. 3 cases in increasing structure size."""
    return [
        {
            "name": "SensorReading",
            "xsd": xsd_for("SensorReading"),
            "specs": [
                ("label", "string"), ("id", "integer", 4),
                ("seq", "integer", 4), ("value", "float", 4),
                ("timestamp", "double", 8), ("flags", "integer", 4),
            ],
            "record": {"label": "pressure-11", "id": 11, "seq": 7,
                       "value": 101.25, "timestamp": 99123456.5,
                       "flags": 3},
        },
        {
            "name": "SensorGroup",
            "xsd": xsd_for("SensorGroup"),
            "specs": [
                ("name", "string"), ("count", "integer", 4),
                ("values", "float[8]", 4), ("flags", "integer", 4),
                ("checksum", "unsigned integer", 4),
                ("mode", "integer", 4),
            ],
            "record": {"name": "manifold-a", "count": 8,
                       "values": [float(i) for i in range(8)],
                       "flags": 1, "checksum": 123456, "mode": 2},
        },
        {
            "name": "RegionUpdate",
            "xsd": xsd_for("Point", "Extent", "RegionHeader",
                           "RegionUpdate"),
            "specs": [
                ("hdr", "RegionHeader"), ("bounds", "Extent"),
                ("origin", "Point"), ("centroid", "Point"),
                ("clip", "Extent"), ("trailer", "RegionHeader"),
                ("scale", "double", 8), ("weights", "float[11]", 4),
            ],
            "subformats": {name: POC_SUBFORMAT_SPECS[name]
                           for name in POC_SUBFORMAT_ORDER},
            "record": {
                "hdr": {"tag": "region", "version": 3, "stamp": 777,
                        "seq": 1},
                "bounds": {"min": {"x": 0.0, "y": 0.0},
                           "max": {"x": 64.0, "y": 64.0}},
                "origin": {"x": 1.0, "y": 2.0},
                "centroid": {"x": 32.0, "y": 30.5},
                "clip": {"min": {"x": 4.0, "y": 4.0},
                         "max": {"x": 60.0, "y": 60.0}},
                "trailer": {"tag": "end", "version": 3, "stamp": 778,
                            "seq": 2},
                "scale": 1.5,
                "weights": [0.25 * i for i in range(11)],
            },
        },
    ]


# ---------------------------------------------------------------------------
# Hydrology structures (Figs. 6, 7)
# ---------------------------------------------------------------------------

#: Fig. 7's largest point: a 256x256 frame = 65536 floats, encoding to
#: ~262 KB as in the paper.
LARGE_FRAME_FLOATS = 65536


def hydrology_cases(architecture: Architecture = NATIVE) -> list[dict]:
    """The Fig. 6 cases in the paper's x-axis order (152/20/44/12)."""
    specs = hydrology_field_specs(architecture)
    return [
        {
            "name": "GridMeta",
            "xsd": hydrology_xsd_for("GridMeta"),
            "specs": specs["GridMeta"],
            "record": {
                "timestep": 4, "nx": 64, "ny": 64, "west": 0.0,
                "east": 1920.0, "south": 0.0, "north": 1920.0,
                "cell_size": 30.0, "no_data": -9999.0,
                "min_depth": 0.0, "max_depth": 2.5, "mean_depth": 0.7,
                "total_volume": 4032.0, "gauge_count": GAUGE_COUNT,
                "gauges": [0.1 * i for i in range(GAUGE_COUNT)],
            },
        },
        {
            "name": "JoinRequest",
            "xsd": hydrology_xsd_for("JoinRequest"),
            "specs": specs["JoinRequest"],
            "record": {"name": "vis5d", "server": 2, "ip_addr": 2130706433,
                       "pid": 4021, "ds_addr": 268500992},
        },
        {
            "name": "FlowParams",
            "xsd": hydrology_xsd_for("FlowParams"),
            "specs": specs["FlowParams"],
            "record": {"timestep": 9, "nx": 64, "ny": 64, "dx": 30.0,
                       "dy": 30.0, "dt": 1.0, "viscosity": 0.2,
                       "rainfall": 1.5, "iterations": 2, "flags": 0,
                       "elapsed": 9.0},
        },
        {
            "name": "SimpleData",
            "xsd": hydrology_xsd_for("SimpleData"),
            "specs": specs["SimpleData"],
            "record": simple_data_record(16),
        },
    ]


def encoding_cases(architecture: Architecture = NATIVE) -> list[dict]:
    """Fig. 7's cases: Hydrology records spanning encoded sizes up to
    the 65536-float frame."""
    cases = hydrology_cases(architecture)
    by_name = {c["name"]: c for c in cases}
    specs = hydrology_field_specs(architecture)
    control = {
        "name": "ControlMsg",
        "xsd": hydrology_xsd_for("ControlMsg"),
        "specs": specs["ControlMsg"],
        "record": {"command": "set_viscosity", "target": "flow2d",
                   "timestep": 5, "value": 0.35},
    }
    large = {
        "name": "SimpleData",
        "xsd": hydrology_xsd_for("SimpleData"),
        "specs": specs["SimpleData"],
        "record": simple_data_record(LARGE_FRAME_FLOATS),
    }
    return [by_name["JoinRequest"], control, by_name["GridMeta"], large]


# ---------------------------------------------------------------------------
# payload sweeps (Figs. 1, 8)
# ---------------------------------------------------------------------------

def simple_data_record(n_floats: int, *, seed: int = 7) -> dict:
    """A ``SimpleData`` record carrying *n_floats* values."""
    rng = np.random.default_rng(seed)
    data = (rng.random(n_floats) * 100.0).astype(np.float32)
    return {"timestep": 9999, "size": n_floats, "data": data}


def simple_data_record_for_bytes(target_bytes: int) -> dict:
    """A record whose *binary structure* size is ~*target_bytes*
    (two ints + N floats, the Fig. 8 'binary data size' axis)."""
    n = max(1, (target_bytes - 8) // 4)
    return simple_data_record(n)


#: The Fig. 8 x axis.
FIG8_SIZES = (100, 1_000, 10_000, 100_000)

#: Fig. 1's example: 3355 data values.
FIG1_FLOATS = 3355
