"""Measurement harness for the paper's experiments.

* :mod:`repro.bench.timing`    -- repeatable wall-clock timing;
* :mod:`repro.bench.rdm`       -- the Remote Discovery Multiplier
  (section 4.2): XMIT registration time over compiled-in PBIO
  registration time for the same format;
* :mod:`repro.bench.workloads` -- the structures behind Figs. 1, 3, 6,
  7 and 8;
* :mod:`repro.bench.report`    -- fixed-width tables/series printers so
  every benchmark emits the same rows the paper's figures plot.
"""

from repro.bench.timing import time_callable, TimingResult
from repro.bench.rdm import RDMResult, measure_rdm, measure_rdm_suite
from repro.bench.report import format_table, print_series, print_table
from repro.bench import workloads

__all__ = [
    "RDMResult",
    "TimingResult",
    "format_table",
    "measure_rdm",
    "measure_rdm_suite",
    "print_series",
    "print_table",
    "time_callable",
    "workloads",
]
