"""Wall-clock timing with the discipline the guides prescribe:
measure, repeat, and report a robust statistic rather than a single
run.

:func:`time_callable` runs ``fn`` in batches of *number* calls,
*repeat* times, after a warmup batch, and reports per-call seconds.
The **minimum** batch mean is the headline number (the least-disturbed
observation, as ``timeit`` argues); mean/stddev are retained for
dispersion checks.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable


@dataclass(frozen=True)
class TimingResult:
    """Per-call timing statistics, in seconds."""

    best: float
    mean: float
    stddev: float
    repeat: int
    number: int

    @property
    def best_ms(self) -> float:
        return self.best * 1e3

    @property
    def best_us(self) -> float:
        return self.best * 1e6

    def __str__(self) -> str:
        return (f"{self.best * 1e3:.6f} ms/call "
                f"(mean {self.mean * 1e3:.6f} "
                f"± {self.stddev * 1e3:.6f}, "
                f"{self.repeat}x{self.number})")


def time_callable(fn: Callable[[], object], *, repeat: int = 5,
                  number: int | None = None,
                  target_batch_seconds: float = 0.02) -> TimingResult:
    """Time ``fn()`` and return per-call statistics.

    When *number* is None it is calibrated so one batch lasts roughly
    *target_batch_seconds*, keeping total runtime bounded for both
    microsecond-scale and millisecond-scale callables.
    """
    fn()  # warmup (also surfaces exceptions before timing starts)
    if number is None:
        number = _calibrate(fn, target_batch_seconds)
    samples: list[float] = []
    for _ in range(repeat):
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        samples.append(elapsed / number)
    mean = sum(samples) / len(samples)
    var = sum((s - mean) ** 2 for s in samples) / len(samples)
    return TimingResult(best=min(samples), mean=mean,
                        stddev=math.sqrt(var), repeat=repeat,
                        number=number)


def _calibrate(fn: Callable[[], object], target: float) -> int:
    number = 1
    while True:
        start = time.perf_counter()
        for _ in range(number):
            fn()
        elapsed = time.perf_counter() - start
        if elapsed >= target or number >= 1 << 16:
            break
        if elapsed <= 0:
            number *= 16
            continue
        # aim directly for the target batch length, capped growth
        number = min(number * 16,
                     max(number + 1, int(number * target / elapsed)))
    return number
