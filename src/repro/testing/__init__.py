"""Test-support harnesses shipped with the library.

:mod:`repro.testing.faults` injects discovery-path failures — at the
resolver layer (via :func:`repro.http.urls.register_resolver`) and at
the HTTP socket layer — so the retry/caching/fallback machinery can be
exercised deterministically.

:mod:`repro.testing.fuzz` is the malformed-frame harness: a seeded
corpus mutator plus a differential decode oracle enforcing the
treat-the-wire-as-untrusted contract (typed errors only, bounded
allocation, fused/unfused agreement, lossless re-encode).
"""

from repro.testing.fuzz import (
    FrameMutator,
    FuzzFailure,
    FuzzReport,
    InvariantViolation,
    WireOracle,
    records_equal,
    run_fuzz,
)
from repro.testing.faults import (
    DROP,
    FAIL,
    GARBAGE,
    HTTP_404,
    HTTP_500,
    OK,
    SLOW,
    TRUNCATE,
    FaultInjectingResolver,
    FaultScript,
    FaultyHTTPServer,
)

__all__ = [
    "DROP",
    "FAIL",
    "FaultInjectingResolver",
    "FaultScript",
    "FaultyHTTPServer",
    "FrameMutator",
    "FuzzFailure",
    "FuzzReport",
    "GARBAGE",
    "HTTP_404",
    "HTTP_500",
    "InvariantViolation",
    "OK",
    "SLOW",
    "TRUNCATE",
    "WireOracle",
    "records_equal",
    "run_fuzz",
]
