"""Test-support harnesses shipped with the library.

:mod:`repro.testing.faults` injects discovery-path failures — at the
resolver layer (via :func:`repro.http.urls.register_resolver`) and at
the HTTP socket layer — so the retry/caching/fallback machinery can be
exercised deterministically.
"""

from repro.testing.faults import (
    DROP,
    FAIL,
    GARBAGE,
    HTTP_404,
    HTTP_500,
    OK,
    SLOW,
    TRUNCATE,
    FaultInjectingResolver,
    FaultScript,
    FaultyHTTPServer,
)

__all__ = [
    "DROP",
    "FAIL",
    "FaultInjectingResolver",
    "FaultScript",
    "FaultyHTTPServer",
    "GARBAGE",
    "HTTP_404",
    "HTTP_500",
    "OK",
    "SLOW",
    "TRUNCATE",
]
