"""Fault injection for the discovery path.

Two injection points, matching the two layers a real deployment can
fail at:

* :class:`FaultInjectingResolver` — a URL resolver (installed with
  :func:`repro.http.urls.register_resolver`) that serves a scripted
  sequence of faults before (or instead of) the healthy document.
  This is the zero-network harness: every fault the retry policy must
  classify can be produced deterministically, and every access is
  counted.
* :class:`FaultyHTTPServer` — a :class:`~repro.http.server
  .MetadataHTTPServer` whose connection handler consumes the same
  fault script at the socket level: drop the connection, truncate the
  body below Content-Length, answer 5xx, stall, or emit bytes that are
  not HTTP at all.

A fault script is a sequence of the constants below; once exhausted
the target behaves healthily (append ``repeat=True`` to
:meth:`FaultScript.extend` or pass ``repeat_last=True`` to keep the
final fault forever — that is how "permanently dead" is modeled).
"""

from __future__ import annotations

import threading
import time

from repro.errors import DiscoveryError, HTTPError
from repro.http.server import DocumentStore, MetadataHTTPServer
from repro.http.urls import ParsedURL, register_resolver
from repro.obs import runtime as _obs
from repro.obs.metrics import FAULTS_INJECTED

#: fault kinds understood by both harnesses
FAIL = "fail"            # connection-level failure (DiscoveryError/drop)
DROP = "drop"            # close the connection without a byte
HTTP_500 = "http-500"    # well-formed 500 response
HTTP_404 = "http-404"    # well-formed 404 response (non-retryable)
TRUNCATE = "truncate"    # body shorter than the declared length
GARBAGE = "garbage"      # bytes that are not HTTP / not the document
SLOW = "slow"            # stall, then serve healthily
OK = "ok"                # serve healthily

_KINDS = {FAIL, DROP, HTTP_500, HTTP_404, TRUNCATE, GARBAGE, SLOW, OK}


class FaultScript:
    """A thread-safe, consumable sequence of fault kinds.

    ``pop()`` returns the next scripted fault, or :data:`OK` once the
    script is exhausted.  With ``repeat_last=True`` the final entry is
    served forever (a permanently dead URL is ``[FAIL]`` repeated).
    """

    def __init__(self, faults: tuple[str, ...] | list[str] = (), *,
                 repeat_last: bool = False) -> None:
        for fault in faults:
            if fault not in _KINDS:
                raise ValueError(f"unknown fault kind {fault!r} "
                                 f"(known: {sorted(_KINDS)})")
        self._lock = threading.Lock()
        self._queue: list[str] = list(faults)
        self._repeat_last = repeat_last
        self.history: list[str] = []

    def pop(self) -> str:
        with self._lock:
            if not self._queue:
                fault = OK
            elif len(self._queue) == 1 and self._repeat_last:
                fault = self._queue[0]
            else:
                fault = self._queue.pop(0)
            self.history.append(fault)
        if fault != OK and _obs.enabled:
            FAULTS_INJECTED.labels(kind=fault).inc()
        return fault

    def extend(self, faults, *, repeat_last: bool | None = None) -> None:
        with self._lock:
            self._queue.extend(faults)
            if repeat_last is not None:
                self._repeat_last = repeat_last

    @property
    def pending(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._queue)


class FaultInjectingResolver:
    """A scheme resolver serving scripted faults, then health.

    Usage::

        resolver = FaultInjectingResolver("fault")
        url = resolver.publish("doc.xsd", xsd_text,
                               faults=[FAIL, FAIL])
        resolver.install()        # register_resolver("fault", ...)
        XMIT().load_url(url)      # fails twice, succeeds on attempt 3
    """

    def __init__(self, scheme: str = "fault", *,
                 slow_delay: float = 0.05) -> None:
        self.scheme = scheme
        self.slow_delay = slow_delay
        self._lock = threading.Lock()
        self._documents: dict[str, bytes] = {}
        self._scripts: dict[str, FaultScript] = {}
        self.calls: dict[str, int] = {}

    # -- setup ---------------------------------------------------------------

    def install(self) -> "FaultInjectingResolver":
        register_resolver(self.scheme, self)
        return self

    def publish(self, name: str, content: str | bytes, *,
                faults=(), repeat_last: bool = False) -> str:
        data = (content.encode("utf-8") if isinstance(content, str)
                else bytes(content))
        with self._lock:
            self._documents[name] = data
            self._scripts[name] = FaultScript(tuple(faults),
                                              repeat_last=repeat_last)
            self.calls.setdefault(name, 0)
        return f"{self.scheme}:{name}"

    def set_faults(self, name: str, faults, *,
                   repeat_last: bool = False) -> None:
        with self._lock:
            self._scripts[name] = FaultScript(tuple(faults),
                                              repeat_last=repeat_last)

    def script_for(self, name: str) -> FaultScript:
        with self._lock:
            return self._scripts[name]

    # -- the resolver itself -------------------------------------------------

    def __call__(self, url: ParsedURL) -> bytes:
        name = url.path
        with self._lock:
            if name not in self._documents:
                raise DiscoveryError(
                    f"no document published at {self.scheme}:{name}")
            self.calls[name] = self.calls.get(name, 0) + 1
            data = self._documents[name]
            script = self._scripts[name]
        fault = script.pop()
        if fault == OK:
            return data
        if fault == SLOW:
            time.sleep(self.slow_delay)
            return data
        if fault in (FAIL, DROP):
            raise DiscoveryError(
                f"injected transient failure for {self.scheme}:{name}")
        if fault == HTTP_500:
            raise HTTPError(
                f"injected 500 for {self.scheme}:{name}", status=500)
        if fault == HTTP_404:
            raise HTTPError(
                f"injected 404 for {self.scheme}:{name}", status=404)
        if fault == TRUNCATE:
            raise HTTPError(
                f"injected truncated body for {self.scheme}:{name} "
                f"({len(data) // 2} of {len(data)} bytes)")
        if fault == GARBAGE:
            return b"\x00\xffthis is not the document you published"
        raise AssertionError(fault)  # pragma: no cover


class FaultyHTTPServer(MetadataHTTPServer):
    """A metadata HTTP server that misbehaves on cue, at socket level.

    Each incoming connection consumes one fault from the script; an
    exhausted script serves normally, so ``faults=[DROP, HTTP_500]``
    models a server that heals on the third request.
    """

    def __init__(self, store: DocumentStore, *,
                 faults=(), repeat_last: bool = False,
                 slow_delay: float = 0.05, **kwargs) -> None:
        self.faults = FaultScript(tuple(faults),
                                  repeat_last=repeat_last)
        self.slow_delay = slow_delay
        super().__init__(store, **kwargs)

    def _handle(self, conn) -> None:
        fault = self.faults.pop()
        try:
            if fault == OK:
                super()._handle(conn)
                return
            if fault == SLOW:
                time.sleep(self.slow_delay)
                super()._handle(conn)
                return
            if fault in (FAIL, DROP):
                conn.close()
                return
            if fault == GARBAGE:
                self._read_request(conn)
                conn.sendall(b"\x00\xde\xadNOT HTTP AT ALL\r\n")
                return
            if fault == HTTP_500:
                self._read_request(conn)
                self._respond(conn, 500, b"injected server error")
                return
            if fault == HTTP_404:
                self._read_request(conn)
                self._respond(conn, 404, b"injected not found")
                return
            if fault == TRUNCATE:
                request = self._read_request(conn)
                doc = (self.store.get(request[1])
                       if request is not None else None) or b"??"
                reason = "OK"
                head = (f"HTTP/1.0 200 {reason}\r\n"
                        f"Content-Type: text/xml\r\n"
                        f"Content-Length: {len(doc)}\r\n"
                        f"Connection: close\r\n\r\n").encode("ascii")
                conn.sendall(head + doc[:len(doc) // 2])
                return
            raise AssertionError(fault)  # pragma: no cover
        except OSError:
            pass
        finally:
            try:
                conn.close()
            except OSError:
                pass
