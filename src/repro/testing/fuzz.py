"""Seeded malformed-frame fuzzing for the PBIO wire path.

The decode layer promises that *any* byte string off a socket either
decodes to a well-formed record or raises a typed
:class:`~repro.errors.DecodeError`/:class:`~repro.errors.ProtocolError`
— never a stray ``struct.error``, never a silent misdecode, never an
allocation the frame's own length cannot justify.  This module turns
that promise into an executable oracle:

* :class:`FrameMutator` — a deterministic (seeded) corpus-driven
  mutator: byte/bit flips, truncations, extensions, pointer and count
  smashing at every offset, zero/0xFF runs, batch-header splicing and
  cross-frame crossover.  The lineage handshake adds two kinds of its
  own (u8 length/count smashing, digest splicing) that campaigns opt
  into via :data:`HANDSHAKE_KINDS`.
* :class:`WireOracle` — the differential judge.  Every mutated frame
  must either (a) raise an allowed typed error, or (b) decode — in
  which case the fused and per-field decode plans must agree, the
  decoded value's size must be bounded by the frame's own length, and
  re-encoding (when the value is still encodable) must round-trip to
  an equal record.
* :class:`HandshakeOracle` — the same contract for LIN_REQ/LIN_RSP
  frame bodies: reject with a typed
  :class:`~repro.errors.ProtocolError` or decode to a payload whose
  canonical re-encode is byte-identical (the handshake layout has no
  padding or alternate spellings, so decode∘encode must be the
  identity on everything that decodes).
* :func:`run_fuzz` — drive N seeded mutations over a corpus and
  return a :class:`FuzzReport`; ``report.raise_for_failures()`` is the
  CI smoke assertion.

Everything is deterministic for a given ``(corpus, seed, iterations)``
triple, so a CI failure reproduces locally and a minimized frame can
be committed as a regression vector (``tests/golden/malformed/``).
"""

from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass, field

from repro.errors import DecodeError, EncodeError, ProtocolError
from repro.pbio.decode import decoder_for_format, materialize_record
from repro.pbio.encode import (
    HEADER_LEN, encoder_for_format, is_batch, parse_batch, parse_header,
)
from repro.pbio.format import IOFormat

#: decoded cells allowed per wire byte — a valid PBIO record cannot
#: yield more values than it has bytes, so anything past this slack is
#: an allocation the frame's length does not justify
_CELLS_PER_BYTE = 2
_CELL_SLACK = 256

#: hard ceiling regardless of frame size (the ISSUE's 64 MiB cap,
#: counted conservatively at 16 bytes per decoded cell)
_MAX_CELLS = (64 * 1024 * 1024) // 16

_U32 = struct.Struct(">I")

#: values a hostile sender would aim a pointer or counter at
_SMASH_VALUES = (0, 1, 2, 3, 4, 7, 8, 15, 16, 0x7F, 0xFF, 0x100,
                 0xFFFF, 0x10000, 0x7FFFFFFF, 0x80000000, 0xFFFFFFFE,
                 0xFFFFFFFF)

#: single-byte boundary values for the u8 fields that structure a
#: lineage-handshake payload (name length, digest counts, ok flag)
_SMASH_U8_VALUES = (0, 1, 2, 3, 7, 8, 0x7F, 0x80, 0xFE, 0xFF)

#: the default mutation set plus the handshake-specific kinds; the
#: default :attr:`FrameMutator.kinds` tuple must NOT grow (existing
#: seeded campaigns replay byte for byte), so handshake fuzz opts in
HANDSHAKE_KINDS = ("flip_byte", "flip_bit", "truncate", "extend",
                   "smash_u32", "zero_run", "ff_run", "duplicate_run",
                   "splice_header", "crossover", "smash_u8",
                   "splice_digest")

#: the default set plus the bulk-array kinds (same opt-in rule):
#: element-count smashing at aligned body slots in either byte order,
#: stride misalignment behind a re-declared envelope length, and
#: in-range pointer splicing into the bulk payload region — the three
#: ways a hostile sender attacks the zero-copy array fast path
BULK_KINDS = ("flip_byte", "flip_bit", "truncate", "extend",
              "smash_u32", "zero_run", "ff_run", "duplicate_run",
              "splice_header", "crossover", "smash_array_len",
              "misalign_stride", "splice_bulk_ptr")


class InvariantViolation(Exception):
    """A mutated frame broke the decode contract (wrong exception
    type, unbounded allocation, fused/unfused divergence, lossy
    re-encode)."""


@dataclass
class FuzzFailure:
    """One contract violation, with everything needed to replay it."""

    case: str
    iteration: int
    mutations: tuple[str, ...]
    frame_hex: str
    error: str

    def frame(self) -> bytes:
        return bytes.fromhex(self.frame_hex)


@dataclass
class FuzzReport:
    """Outcome counts for one :func:`run_fuzz` drive."""

    iterations: int = 0
    decoded_ok: int = 0
    rejected: int = 0
    reencoded_ok: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def raise_for_failures(self) -> None:
        if self.failures:
            first = self.failures[0]
            raise InvariantViolation(
                f"{len(self.failures)} invariant violation(s) in "
                f"{self.iterations} mutations; first: case "
                f"{first.case!r} iteration {first.iteration} "
                f"mutations {first.mutations}: {first.error} "
                f"[frame {first.frame_hex}]")

    def summary(self) -> str:
        return (f"{self.iterations} mutations: "
                f"{self.rejected} rejected, "
                f"{self.decoded_ok} decoded "
                f"({self.reencoded_ok} re-encoded), "
                f"{len(self.failures)} violations")


class FrameMutator:
    """Deterministic frame corruption driven by one seeded RNG.

    Mutation kinds deliberately mirror how real frames go wrong:
    single flipped bits/bytes (line noise), truncation and padding
    (short reads, framing bugs), 32-bit pointer/count smashing at
    arbitrary offsets (the attack the bounds checks exist for), runs
    of zeros/0xFF (cleared or freed buffers), and header splicing
    between corpus frames (a batch header on a scalar body and vice
    versa).
    """

    def __init__(self, rng: random.Random,
                 corpus_frames: list[bytes] | None = None,
                 kinds: tuple[str, ...] | None = None) -> None:
        self.rng = rng
        self.corpus_frames = corpus_frames or []
        #: the historical default set; seeded campaigns replay against
        #: it, so it never changes — pass *kinds* (e.g.
        #: :data:`HANDSHAKE_KINDS`) to widen a new campaign instead
        self.kinds = tuple(kinds) if kinds is not None else (
            "flip_byte", "flip_bit", "truncate", "extend",
            "smash_u32", "zero_run", "ff_run",
            "duplicate_run", "splice_header", "crossover")

    def mutate(self, frame: bytes,
               rounds: int | None = None) -> tuple[bytes, tuple[str, ...]]:
        """Apply 1..3 random mutations; returns (frame, kinds used)."""
        rng = self.rng
        if rounds is None:
            rounds = rng.randint(1, 3)
        applied: list[str] = []
        data = bytearray(frame)
        for _ in range(rounds):
            kind = rng.choice(self.kinds)
            data = getattr(self, "_" + kind)(data)
            applied.append(kind)
        return bytes(data), tuple(applied)

    # -- individual mutations (each takes and returns a bytearray) ----------

    def _flip_byte(self, data: bytearray) -> bytearray:
        if data:
            i = self.rng.randrange(len(data))
            data[i] = self.rng.randrange(256)
        return data

    def _flip_bit(self, data: bytearray) -> bytearray:
        if data:
            i = self.rng.randrange(len(data))
            data[i] ^= 1 << self.rng.randrange(8)
        return data

    def _truncate(self, data: bytearray) -> bytearray:
        if data:
            return data[:self.rng.randrange(len(data))]
        return data

    def _extend(self, data: bytearray) -> bytearray:
        n = self.rng.randint(1, 64)
        data.extend(self.rng.randrange(256) for _ in range(n))
        return data

    def _smash_u32(self, data: bytearray) -> bytearray:
        """Overwrite 4 bytes with a boundary value — when it lands on
        a pointer or counter slot this is the classic exploit input."""
        if len(data) >= 4:
            at = self.rng.randrange(len(data) - 3)
            value = self.rng.choice(_SMASH_VALUES + (len(data),
                                                     len(data) - 1))
            data[at:at + 4] = _U32.pack(value & 0xFFFFFFFF)
        return data

    def _zero_run(self, data: bytearray) -> bytearray:
        return self._fill_run(data, 0)

    def _ff_run(self, data: bytearray) -> bytearray:
        return self._fill_run(data, 0xFF)

    def _fill_run(self, data: bytearray, value: int) -> bytearray:
        if data:
            at = self.rng.randrange(len(data))
            n = min(self.rng.randint(1, 16), len(data) - at)
            data[at:at + n] = bytes([value]) * n
        return data

    def _duplicate_run(self, data: bytearray) -> bytearray:
        if data:
            at = self.rng.randrange(len(data))
            n = min(self.rng.randint(1, 32), len(data) - at)
            data[at:at] = data[at:at + n]
        return data

    def _splice_header(self, data: bytearray) -> bytearray:
        """Put another corpus frame's header (format id, flags, body
        length — possibly FLAG_BATCH) on this frame's body."""
        if self.corpus_frames and len(data) >= HEADER_LEN:
            other = self.rng.choice(self.corpus_frames)
            data[:HEADER_LEN] = other[:HEADER_LEN]
        return data

    def _crossover(self, data: bytearray) -> bytearray:
        if self.corpus_frames and data:
            other = self.rng.choice(self.corpus_frames)
            if other:
                at = self.rng.randrange(len(data))
                start = self.rng.randrange(len(other))
                n = self.rng.randint(1, 48)
                data[at:at + n] = other[start:start + n]
        return data

    # -- handshake-specific kinds (opt-in via HANDSHAKE_KINDS) --------------

    def _smash_u8(self, data: bytearray) -> bytearray:
        """Overwrite one byte with a boundary value — the handshake
        payload is structured entirely by u8 fields (name length,
        digest counts, ok flag), so this is its count-smash."""
        if data:
            at = self.rng.randrange(len(data))
            data[at] = self.rng.choice(
                _SMASH_U8_VALUES + (len(data) & 0xFF,))
        return data

    def _splice_digest(self, data: bytearray) -> bytearray:
        """Overwrite an 8-byte run with a forged digest: zeros, 0xFF,
        or eight bytes lifted from another corpus frame — the wrong-
        lineage / zeroed-chosen attack on digest slots."""
        if not data:
            return data
        at = self.rng.randrange(len(data))
        which = self.rng.randrange(3)
        if which == 0:
            digest = b"\x00" * 8
        elif which == 1:
            digest = b"\xff" * 8
        else:
            pool = self.rng.choice(self.corpus_frames) \
                if self.corpus_frames else bytes(data)
            if len(pool) < 8:
                pool = bytes(pool) + b"\x00" * 8
            start = self.rng.randrange(len(pool) - 7)
            digest = bytes(pool[start:start + 8])
        data[at:at + 8] = digest
        return data

    # -- bulk-array kinds (opt-in via BULK_KINDS) ---------------------------

    def _smash_array_len(self, data: bytearray) -> bytearray:
        """Overwrite a 4-aligned body slot with a boundary element
        count in either byte order — aimed where array length
        prefixes and sizing fields actually live, unlike the
        anywhere-goes ``smash_u32``."""
        if len(data) >= HEADER_LEN + 4:
            slots = (len(data) - HEADER_LEN) // 4
            at = HEADER_LEN + 4 * self.rng.randrange(slots)
            value = self.rng.choice(
                _SMASH_VALUES + (len(data) - HEADER_LEN,))
            code = self.rng.choice((">I", "<I"))
            struct.pack_into(code, data, at, value & 0xFFFFFFFF)
        return data

    def _misalign_stride(self, data: bytearray) -> bytearray:
        """Insert or delete 1..7 bytes inside the body, then
        re-declare the header length to match: the frame stays
        well-framed, but every pointer past the edit lands stride-
        misaligned inside what used to be a bulk payload."""
        if len(data) > HEADER_LEN + 8:
            at = self.rng.randrange(HEADER_LEN, len(data))
            n = self.rng.randint(1, 7)
            if self.rng.randrange(2):
                data[at:at] = bytes(self.rng.randrange(256)
                                    for _ in range(n))
            else:
                del data[at:at + n]
            _U32.pack_into(data, 12,
                           (len(data) - HEADER_LEN) & 0xFFFFFFFF)
        return data

    def _splice_bulk_ptr(self, data: bytearray) -> bytearray:
        """Overwrite an aligned 4- or 8-byte slot with an offset that
        is *inside* the record — a pointer spliced into the bulk
        region passes any naive length check and is exactly what the
        per-field pointer/bounds discipline must catch."""
        body_len = len(data) - HEADER_LEN
        if body_len >= 8:
            width = self.rng.choice((4, 8))
            slots = (body_len - width) // width + 1
            at = HEADER_LEN + width * self.rng.randrange(slots)
            value = self.rng.randrange(body_len + 1)
            code = self.rng.choice((">", "<")) + (
                "I" if width == 4 else "Q")
            struct.pack_into(code, data, at, value)
        return data


def records_equal(a, b) -> bool:
    """Structural equality with NaN == NaN (mutated floats routinely
    decode to NaN, which would break plain ``==`` comparison)."""
    if isinstance(a, float) and isinstance(b, float):
        return a == b or (math.isnan(a) and math.isnan(b))
    if isinstance(a, dict) and isinstance(b, dict):
        return (a.keys() == b.keys()
                and all(records_equal(v, b[k]) for k, v in a.items()))
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return (len(a) == len(b)
                and all(records_equal(x, y) for x, y in zip(a, b)))
    return a == b


def _cell_count(value) -> int:
    """Decoded-value size in cells, for the allocation bound."""
    if isinstance(value, dict):
        return 1 + sum(_cell_count(v) for v in value.values())
    if isinstance(value, (list, tuple)):
        return 1 + sum(_cell_count(v) for v in value)
    if isinstance(value, (str, bytes)):
        return 1 + len(value)
    return 1


class WireOracle:
    """Differential decode judge over a set of known formats.

    Holds, per format id, the validated fused, per-field and
    zero-copy (``arrays="view"``) decode plans plus the encoder, and
    checks one (possibly mutated) frame against the decode contract.  Frames referencing format ids
    outside the known set are treated as rejected (a live receiver
    would issue a FMT_REQ for them; there is nothing to decode
    against).
    """

    def __init__(self, formats) -> None:
        self._by_id: dict = {}
        for fmt in formats:
            self.add_format(fmt)

    def add_format(self, fmt: IOFormat) -> None:
        self._by_id[fmt.format_id] = (
            fmt,
            decoder_for_format(fmt, fuse=True),
            decoder_for_format(fmt, fuse=False),
            decoder_for_format(fmt, arrays="view"),
            encoder_for_format(fmt),
        )

    # -- the contract -------------------------------------------------------

    def check(self, wire: bytes) -> dict:
        """Judge one frame.

        Returns ``{"decoded": int, "reencoded": int}`` on success,
        raises :class:`~repro.errors.DecodeError` (the allowed
        rejection) or :class:`InvariantViolation` (a contract breach;
        unexpected exception types propagate as themselves and are
        classified by :func:`run_fuzz`).
        """
        if is_batch(wire):
            fid, _big, bodies = parse_batch(wire)
            entry = self._entry(fid)
            decoded = reencoded = 0
            for body in bodies:
                ok = self._check_body(entry, bytes(body), len(wire))
                decoded += 1
                reencoded += ok
            return {"decoded": decoded, "reencoded": reencoded}
        fid, body_len = parse_header(wire, require_body=True)
        entry = self._entry(fid)
        body = wire[HEADER_LEN:HEADER_LEN + body_len]
        ok = self._check_body(entry, body, len(wire))
        return {"decoded": 1, "reencoded": int(ok)}

    def _entry(self, fid):
        try:
            return self._by_id[fid]
        except KeyError:
            raise DecodeError(
                f"frame references unknown format id {fid}") from None

    def _check_body(self, entry, body: bytes, wire_len: int) -> bool:
        """Decode one record body and check every invariant; returns
        True when the value also re-encoded losslessly."""
        fmt, fused, unfused, viewer, encoder = entry
        record = fused.decode(body)

        cells = _cell_count(record)
        if cells > min(wire_len * _CELLS_PER_BYTE + _CELL_SLACK,
                       _MAX_CELLS):
            raise InvariantViolation(
                f"{fmt.name}: decoded {cells} cells from a "
                f"{wire_len}-byte frame (allocation unbounded by "
                f"input size)")

        baseline = unfused.decode(body)
        if not records_equal(record, baseline):
            raise InvariantViolation(
                f"{fmt.name}: fused and per-field decode plans "
                f"disagree: {record!r} != {baseline!r}")

        # the zero-copy view decode must see the exact same values the
        # copying plan does, and must reject exactly what it rejects —
        # a frame only one of them throws on is a contract breach, so
        # let any DecodeError here propagate as InvariantViolation
        try:
            viewed = viewer.decode(body)
        except DecodeError as exc:
            raise InvariantViolation(
                f"{fmt.name}: view decode rejected a frame the "
                f"copying plan accepted: {exc}") from exc
        if not records_equal(materialize_record(viewed), record):
            raise InvariantViolation(
                f"{fmt.name}: zero-copy view decode diverged from "
                f"the copying plan")

        # re-encode when the decoded value is still encodable (a
        # mutated frame can decode to values outside the format's
        # encode domain, e.g. a replacement char overflowing char[n];
        # a typed EncodeError there is an acceptable outcome) — but a
        # successful re-encode must round-trip to an equal record
        try:
            wire2 = encoder.encode_wire(record)
        except EncodeError:
            return False
        except Exception as exc:
            raise InvariantViolation(
                f"{fmt.name}: re-encode raised "
                f"{type(exc).__name__}: {exc}") from exc
        _fid2, body_len2 = parse_header(wire2, require_body=True)
        record2 = fused.decode(wire2[HEADER_LEN:HEADER_LEN + body_len2])
        if not records_equal(record, record2):
            raise InvariantViolation(
                f"{fmt.name}: decode -> encode -> decode drifted: "
                f"{record!r} != {record2!r}")
        return True


class HandshakeOracle:
    """Decode judge for lineage-handshake frame bodies.

    *Frame body* means what :func:`~repro.transport.messages
    .decode_frame` receives after the transport strips the u32 length
    prefix: ``u8 type | payload``.  The contract: every body either
    raises a typed :class:`~repro.errors.ProtocolError`, or decodes to
    a LIN_REQ/LIN_RSP payload whose canonical re-encode reproduces the
    input byte for byte — the handshake layout has no padding and no
    alternate spellings, so a decodable frame that re-encodes
    differently means the decoder accepted something the encoder
    cannot say (a smuggling channel).  Mutations that land on another
    frame type are outside this oracle's jurisdiction and count as
    rejected.
    """

    def check(self, body: bytes) -> dict:
        from repro.transport.messages import (
            FrameType, decode_frame, decode_lineage_req,
            decode_lineage_rsp, encode_lineage_req,
            encode_lineage_rsp,
        )
        frame = decode_frame(body)
        if frame.type is FrameType.LIN_REQ:
            name, offered = decode_lineage_req(frame.payload)
            if not offered:
                raise InvariantViolation(
                    "LIN_REQ decoded with no offered digests")
            rebuild = lambda: encode_lineage_req(name, offered)  # noqa: E731
        elif frame.type is FrameType.LIN_RSP:
            name, chosen, chain = decode_lineage_rsp(frame.payload)
            if chosen is not None and chain and chosen not in chain:
                raise InvariantViolation(
                    "LIN_RSP decoded with chosen outside its chain")
            rebuild = lambda: encode_lineage_rsp(name, chosen, chain)  # noqa: E731
        else:
            raise ProtocolError(
                f"not a lineage handshake frame ({frame.type.name})")
        if not name:
            raise InvariantViolation(
                f"{frame.type.name} decoded with an empty name")
        try:
            again = rebuild()
        except Exception as exc:
            raise InvariantViolation(
                f"{frame.type.name}: decoded payload failed canonical "
                f"re-encode: {type(exc).__name__}: {exc}") from exc
        if again != frame.payload:
            raise InvariantViolation(
                f"{frame.type.name}: canonical re-encode drifted: "
                f"{frame.payload.hex()} -> {again.hex()}")
        return {"decoded": 1, "reencoded": 1}


def run_fuzz(corpus: dict[str, bytes], oracle, *,
             iterations: int = 10_000, seed: int = 0,
             allowed: tuple = (DecodeError, ProtocolError),
             kinds: tuple[str, ...] | None = None,
             max_struct_errors: int = 0) -> FuzzReport:
    """Drive *iterations* seeded mutations of *corpus* through
    *oracle* and classify every outcome.

    *corpus* maps case names to pristine wire frames.  Every mutated
    frame must either decode cleanly (all oracle invariants hold) or
    raise one of *allowed*; anything else — a bare ``struct.error``,
    ``ValueError``, ``MemoryError``, an oracle
    :class:`InvariantViolation` — is recorded as a
    :class:`FuzzFailure`.  Deterministic for a given seed.  *kinds*
    widens the mutation set (e.g. :data:`HANDSHAKE_KINDS`); omitting
    it keeps the historical default so existing seeds replay.
    """
    _ = max_struct_errors  # reserved: no tolerated escapes today
    rng = random.Random(seed)
    names = sorted(corpus)
    frames = [bytes(corpus[name]) for name in names]
    mutator = FrameMutator(rng, frames, kinds=kinds)
    report = FuzzReport()
    for iteration in range(iterations):
        pick = rng.randrange(len(names))
        mutated, kinds = mutator.mutate(frames[pick])
        report.iterations += 1
        try:
            outcome = oracle.check(mutated)
        except allowed:
            report.rejected += 1
        except Exception as exc:  # noqa: BLE001 - the whole point
            report.failures.append(FuzzFailure(
                case=names[pick], iteration=iteration,
                mutations=kinds, frame_hex=mutated.hex(),
                error=f"{type(exc).__name__}: {exc}"))
        else:
            report.decoded_ok += outcome["decoded"]
            report.reencoded_ok += outcome["reencoded"]
    return report
