#!/usr/bin/env python
"""Format evolution without recompilation.

The usability scenario motivating the paper: the structure of a shared
message changes, and because metadata lives in an XML document rather
than in compiled code, the change is made *once* at the document's URL.
Components that refresh see the new fields; components that never
update keep working through PBIO's restricted evolution (added fields
dropped, missing fields defaulted).

Run:  python examples/format_evolution.py
"""

from repro import IOContext, XMIT
from repro.http import publish_document
from repro.pbio.evolution import evolution_report
from repro.pbio.format_server import FormatServer

V1 = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="SimpleData">
    <xsd:element name="timestep" type="xsd:integer" />
    <xsd:element name="size" type="xsd:integer" />
    <xsd:element name="data" type="xsd:float" maxOccurs="*"
                 dimensionName="size" />
  </xsd:complexType>
</xsd:schema>
"""

V2 = V1.replace(
    "</xsd:complexType>",
    '  <xsd:element name="units" type="xsd:string" />\n'
    '  <xsd:element name="quality" type="xsd:double" />\n'
    "</xsd:complexType>")


def main() -> None:
    url = publish_document("evolving.xsd", V1)
    server = FormatServer()  # shared by all components

    # the "old" component: discovers v1, never refreshes
    old_xmit = XMIT()
    old_xmit.load_url(url)
    old_ctx = IOContext(format_server=server)
    old_fmt = old_xmit.register_with_context(old_ctx, "SimpleData")
    print(f"old component registered: {old_fmt}")

    # the format evolves at its source — one central change
    publish_document("evolving.xsd", V2)
    print("\nformat document updated at the URL (added 'units', "
          "'quality')\n")

    # the "new" component refreshes and rebinds
    new_xmit = XMIT()
    new_xmit.load_url(url)
    new_ctx = IOContext(format_server=server)
    new_fmt = new_xmit.register_with_context(new_ctx, "SimpleData")
    print(f"new component registered: {new_fmt}")

    report = evolution_report(old_fmt, new_fmt)
    print(f"\nevolution report: added={report.added} "
          f"removed={report.removed} compatible={report.compatible}\n")

    # new sender -> old receiver: extra fields dropped
    wire = new_ctx.encode("SimpleData", {
        "timestep": 42, "data": [1.5, 2.5], "units": "m^3/s",
        "quality": 0.97})
    seen_by_old = old_ctx.decode_as(wire, "SimpleData")
    print(f"new sender record decoded by OLD component:\n"
          f"  {seen_by_old}")

    # old sender -> new receiver: missing fields defaulted
    wire = old_ctx.encode("SimpleData", {"timestep": 7,
                                         "data": [9.0]})
    seen_by_new = new_ctx.decode_as(wire, "SimpleData")
    print(f"old sender record decoded by NEW component:\n"
          f"  {seen_by_new}")

    assert "units" not in seen_by_old
    assert seen_by_new["units"] is None
    print("\nboth directions interoperate — no recompilation, no "
          "flag day.")


if __name__ == "__main__":
    main()
