#!/usr/bin/env python
"""Remote metadata discovery over HTTP, across architectures.

Demonstrates the paper's deployment story: message formats are hosted
on an HTTP server (Apache in the paper; our own substrate here), and
two processes with *different architectures* — a big-endian ILP32
"SPARC" sender and the native LP64 receiver — each retrieve the same
document, register the format, and exchange binary records over TCP
with PBIO's receiver-makes-right conversion.

Run:  python examples/remote_discovery.py
"""

import threading

from repro import Connection, IOContext, NATIVE, SPARC_32, XMIT
from repro.http import DocumentStore, MetadataHTTPServer
from repro.pbio.format_server import FormatServer
from repro.transport import tcp_pair

TELEMETRY_XSD = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="Telemetry">
    <xsd:element name="station" type="xsd:string" />
    <xsd:element name="sequence" type="xsd:unsignedInt" />
    <xsd:element name="count" type="xsd:int" />
    <xsd:element name="samples" type="xsd:double" maxOccurs="*"
                 dimensionName="count" />
  </xsd:complexType>
</xsd:schema>
"""


def make_endpoint(architecture, url):
    """One 'process': its own format server, XMIT-discovered formats."""
    ctx = IOContext(architecture=architecture,
                    format_server=FormatServer())
    xmit = XMIT()
    for name in xmit.load_url(url):
        xmit.register_with_context(ctx, name)
    return ctx


def main() -> None:
    # host the metadata
    store = DocumentStore()
    store.put("/telemetry.xsd", TELEMETRY_XSD)
    with MetadataHTTPServer(store) as http_server:
        url = http_server.url_for("/telemetry.xsd")
        print(f"metadata served at {url}\n")

        sender_ctx = make_endpoint(SPARC_32, url)
        receiver_ctx = make_endpoint(NATIVE, url)
        print(f"sender architecture:   "
              f"{sender_ctx.architecture.name} (big-endian ILP32)")
        print(f"receiver architecture: "
              f"{receiver_ctx.architecture.name}\n")

        client, server = tcp_pair()
        sender = Connection(sender_ctx, client)
        receiver = Connection(receiver_ctx, server)

        received = []

        def receive_all():
            while True:
                msg = receiver.receive(timeout=10)
                if msg is None:
                    return
                received.append(msg)

        thread = threading.Thread(target=receive_all)
        thread.start()

        for seq in range(3):
            record = {"station": f"gauge-{seq}", "sequence": seq,
                      "samples": [0.5 * seq, 1.5 * seq, 2.5 * seq]}
            sender.send("Telemetry", record)
            print(f"sent     {record}")

        # sender services the receiver's one-time metadata request
        try:
            sender.receive(timeout=2)
        except Exception:
            pass
        import time
        deadline = time.monotonic() + 5
        while len(received) < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        sender.close()
        thread.join(5)
        receiver.close()

    print()
    for msg in received:
        print(f"received {msg.record}")
    print(f"\nmetadata negotiations performed: "
          f"{receiver.negotiations} (amortized over "
          f"{len(received)} records)")
    assert len(received) == 3


if __name__ == "__main__":
    main()
