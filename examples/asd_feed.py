#!/usr/bin/env python
"""Wide-area operational data: an ASD flight feed fanned out to many
clients.

The paper's Fig. 2 struct (``ASDOffEvent``: center, airline, flight,
takeoff time) comes from the Aircraft Situation Display feed — the
kind of "wide-area transfers of operational data, where scalability to
many information clients ... implies the need to reduce per-client
processing and transmission requirements" that motivates binary
transport (section 1).

This example runs one server streaming synthetic ASD events over TCP
to N subscriber clients.  The format is discovered by every party from
an HTTP-hosted schema document; events travel as PBIO binary records.
At the end it reports per-client delivery and what the same feed would
have cost as XML.

Run:  python examples/asd_feed.py [--clients 8] [--events 200]
"""

import argparse
import threading
import time

from repro import Connection, IOContext, XMIT
from repro.http import DocumentStore, MetadataHTTPServer
from repro.pbio.format_server import FormatServer
from repro.transport import TCPChannel, TCPListener
from repro.wire import XMLWireCodec

ASD_XSD = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="centerID" type="xsd:string" />
    <xsd:element name="airline" type="xsd:string" />
    <xsd:element name="flightNum" type="xsd:integer" />
    <xsd:element name="off" type="xsd:unsignedLong" />
  </xsd:complexType>
</xsd:schema>
"""

CENTERS = ("ZTL", "ZOB", "ZNY", "ZAU", "ZLA", "ZFW")
AIRLINES = ("DAL", "UAL", "AAL", "SWA", "FDX")


def make_events(n: int) -> list[dict]:
    return [{"centerID": CENTERS[i % len(CENTERS)],
             "airline": AIRLINES[i % len(AIRLINES)],
             "flightNum": 100 + i,
             "off": 946684800 + i * 37} for i in range(n)]


def endpoint(schema_url: str) -> IOContext:
    ctx = IOContext(format_server=FormatServer())
    xmit = XMIT()
    for name in xmit.load_url(schema_url):
        xmit.register_with_context(ctx, name)
    return ctx


def client_task(host: str, port: int, schema_url: str,
                results: list, index: int) -> None:
    ctx = endpoint(schema_url)
    conn = Connection(ctx, TCPChannel.connect(host, port))
    events = []
    while True:
        msg = conn.receive(timeout=30)
        if msg is None:
            break
        events.append(msg.record)
    conn.close()
    results[index] = events


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clients", type=int, default=8)
    parser.add_argument("--events", type=int, default=200)
    args = parser.parse_args()

    store = DocumentStore()
    store.put("/asd.xsd", ASD_XSD)
    with MetadataHTTPServer(store) as http_server:
        schema_url = http_server.url_for("/asd.xsd")
        print(f"format document at {schema_url}")

        server_ctx = endpoint(schema_url)
        listener = TCPListener()
        results: list = [None] * args.clients
        threads = [threading.Thread(
            target=client_task,
            args=(listener.host, listener.port, schema_url, results,
                  i)) for i in range(args.clients)]
        for thread in threads:
            thread.start()
        connections = [Connection(server_ctx,
                                  listener.accept(timeout=10))
                       for _ in range(args.clients)]

        events = make_events(args.events)
        start = time.perf_counter()
        for event in events:
            # marshal once, fan the same bytes to every client — the
            # per-client processing reduction binary transport buys
            wire = server_ctx.encode("ASDOffEvent", event)
            for conn in connections:
                conn.send_encoded(wire)
        for conn in connections:
            conn.close()
        for thread in threads:
            thread.join(30)
        elapsed = time.perf_counter() - start
        listener.close()

    delivered = sum(len(r or []) for r in results)
    total = args.events * args.clients
    print(f"\nstreamed {args.events} events to {args.clients} clients "
          f"in {elapsed:.3f}s "
          f"({delivered}/{total} deliveries, "
          f"{delivered / elapsed:,.0f} deliveries/s)")
    assert delivered == total
    assert all(r == events for r in results)

    stats = server_ctx.stats
    binary_bytes = stats.bytes_encoded
    xml_codec = XMLWireCodec(server_ctx.lookup_format("ASDOffEvent"))
    xml_bytes = sum(len(xml_codec.encode(e)) for e in events) \
        * args.clients
    print(f"bytes on the wire (binary): {binary_bytes:,}")
    print(f"bytes if XML were the wire: {xml_bytes:,} "
          f"({xml_bytes / binary_bytes:.1f}x)")


if __name__ == "__main__":
    main()
