#!/usr/bin/env python
"""RPC two ways: XML-RPC messages vs XMIT-RPC binary calls.

The paper planned "SOAP/XML-RPC style interfaces" among its BCM
targets.  This example runs the same statistics service through both
completed implementations — classic XML-RPC documents, and XMIT-RPC
(method signatures discovered from XML Schema, payloads as PBIO binary
records) — and compares bytes and latency per call.

Run:  python examples/rpc_service.py
"""

import time

from repro.rpc import BinaryRPCCodec, RPCClient, RPCServer, XMLRPCCodec
from repro.transport import channel_pair

SIGNATURES = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="statsParams">
    <xsd:element name="n" type="xsd:int" />
    <xsd:element name="values" type="xsd:double" maxOccurs="*"
                 dimensionName="n" />
  </xsd:complexType>
  <xsd:complexType name="statsResult">
    <xsd:element name="mean" type="xsd:double" />
    <xsd:element name="minimum" type="xsd:double" />
    <xsd:element name="maximum" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>
"""


def stats(params: dict) -> dict:
    values = params["values"]
    return {"mean": sum(values) / len(values),
            "minimum": min(values), "maximum": max(values)}


def run_protocol(name: str, codec_factory, params: dict,
                 calls: int = 200) -> None:
    client_ch, server_ch = channel_pair()
    server = RPCServer(codec_factory(), server_ch)
    server.register("stats", stats)
    thread = server.serve_in_thread()
    client = RPCClient(codec_factory(), client_ch)

    call_bytes = len(client.codec.encode_call("stats", params))
    result = client.call("stats", params)
    start = time.perf_counter()
    for _ in range(calls):
        client.call("stats", params)
    per_call = (time.perf_counter() - start) / calls * 1e3

    print(f"{name:10s} call payload {call_bytes:6d} B   "
          f"{per_call:8.3f} ms/call   result {result}")
    client.close()
    thread.join(5)


def main() -> None:
    values = [0.5 * i for i in range(500)]
    print("service: stats over 500 doubles, in-process transport\n")
    run_protocol("XML-RPC", XMLRPCCodec, {"values": values})
    run_protocol("XMIT-RPC", lambda: BinaryRPCCodec(SIGNATURES),
                 {"n": len(values), "values": values})
    print("\nsame handlers, same transport — only the wire format "
          "changed.")


if __name__ == "__main__":
    main()
