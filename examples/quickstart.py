#!/usr/bin/env python
"""Quickstart: XML-discovered metadata driving binary communication.

Walks the three metadata phases from the paper on the Fig. 2 example
structure (``ASDOffEvent``, an air-traffic feed record):

1. **discovery** — the format definition lives in an XML document at a
   URL, not in the program;
2. **binding**   — XMIT compiles it to PBIO native metadata (we print
   the generated C-equivalent artifacts, exactly the Fig. 2 pair);
3. **marshaling** — records move in compact binary form; the XML never
   appears on the wire.

Run:  python examples/quickstart.py
"""

from repro import IOContext, XMIT
from repro.http import publish_document

ASDOFF_XSD = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="ASDOffEvent">
    <xsd:element name="centerID" type="xsd:string" />
    <xsd:element name="airline" type="xsd:string" />
    <xsd:element name="flightNum" type="xsd:integer" />
    <xsd:element name="off" type="xsd:unsignedLong" />
  </xsd:complexType>
</xsd:schema>
"""


def main() -> None:
    # -- discovery: the metadata lives at a URL --------------------------
    url = publish_document("asdoff.xsd", ASDOFF_XSD)
    print(f"format document published at {url}\n")

    xmit = XMIT()
    loaded = xmit.load_url(url)
    print(f"discovered formats: {loaded}\n")

    # -- binding: generate native metadata -------------------------------
    print("generated C-equivalent metadata (the paper's Fig. 2):\n")
    print(xmit.generate_c_source("ASDOffEvent"))

    ctx = IOContext()
    fmt = xmit.register_with_context(ctx, "ASDOffEvent")
    print(f"registered: {fmt}\n")

    # -- marshaling: efficient binary transmission ------------------------
    record = {"centerID": "ZTL", "airline": "DAL",
              "flightNum": 1023, "off": 987654321}
    wire = ctx.encode("ASDOffEvent", record)
    print(f"record: {record}")
    print(f"wire bytes ({len(wire)} B): {wire.hex(' ')}\n")

    decoded = ctx.decode(wire)
    print(f"decoded as {decoded.format_name} "
          f"(format id {decoded.format_id}):")
    print(f"  {decoded.record}")
    assert decoded.record == record

    # -- bonus: a runtime-generated message class -------------------------
    cls = xmit.generate_python_class("ASDOffEvent")
    event = cls(centerID="ZOB", airline="UAL", flightNum=88, off=120)
    print(f"\nruntime-generated class instance: {event!r}")
    wire2 = ctx.encode("ASDOffEvent", event.to_record())
    print(f"  encodes to {len(wire2)} bytes")


if __name__ == "__main__":
    main()
