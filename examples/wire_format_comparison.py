#!/usr/bin/env python
"""Why XML stays off the wire: size and speed across five codecs.

Encodes the paper's ``SimpleData`` example (Fig. 1: 3355 float values)
under every wire format in the library — XML-as-ASCII, MPI-style pack,
CORBA CDR, Sun XDR, and PBIO — and prints bytes-on-the-wire plus
send-side encode time, reproducing the shape of the paper's Fig. 8 and
the Fig. 1 expansion argument at example scale.

Run:  python examples/wire_format_comparison.py
"""

from repro.bench.report import print_table
from repro.bench.timing import time_callable
from repro.bench.workloads import FIG1_FLOATS, simple_data_record
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.wire import all_codecs, codec_by_name


def main() -> None:
    fmt = IOFormat("SimpleData", field_list_for([
        ("timestep", "integer", 4), ("size", "integer", 4),
        ("data", "float[size]", 4)]))
    record = simple_data_record(FIG1_FLOATS)
    binary_payload = 8 + 4 * FIG1_FLOATS

    rows = []
    baseline = None
    for name in sorted(all_codecs()):
        codec = codec_by_name(name, fmt)
        data = codec.encode(record)
        timing = time_callable(lambda c=codec: c.encode(record),
                               repeat=3, target_batch_seconds=0.01)
        rows.append((name, len(data),
                     round(len(data) / binary_payload, 2),
                     round(timing.best_ms, 4)))
        if name == "pbio":
            baseline = timing.best
    rows.sort(key=lambda r: r[3])

    print(f"message: SimpleData with {FIG1_FLOATS} float values "
          f"({binary_payload} B of binary payload)\n")
    print_table(
        ["codec", "wire bytes", "expansion", "encode ms"], rows,
        title="send-side comparison (paper Figs. 1 and 8)")

    print("\nslowdown vs PBIO:")
    for name, _, _, encode_ms in rows:
        print(f"  {name:5s} {encode_ms / (baseline * 1e3):10.1f}x")


if __name__ == "__main__":
    main()
