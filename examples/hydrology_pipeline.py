#!/usr/bin/env python
"""The Hydrology application (the paper's Fig. 5), end to end.

Builds the component-based visualization pipeline — data file reader,
presend, flow2d, coupler, and two Vis5D-style GUI sinks — with every
component discovering the shared message formats through XMIT from a
published schema document (the paper's modification to the original
NCSA demo), then runs a synthetic watershed through it and prints what
each GUI rendered.

Run:  python examples/hydrology_pipeline.py [--tcp] [--timesteps N]
"""

import argparse
import tempfile
from pathlib import Path

from repro.hydrology import generate_watershed, run_pipeline
from repro.hydrology.components import render_ascii
from repro.hydrology.datafile import write_watershed_file


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--tcp", action="store_true",
                        help="run every hop over loopback TCP")
    parser.add_argument("--timesteps", type=int, default=10)
    parser.add_argument("--grid", type=int, default=48,
                        help="watershed grid edge length")
    args = parser.parse_args()

    print(f"generating {args.grid}x{args.grid} watershed, "
          f"{args.timesteps} timesteps ...")
    dataset = generate_watershed(nx=args.grid, ny=args.grid,
                                 timesteps=args.timesteps)

    # Fig. 5 starts at a *data file*: write the watershed as a
    # self-describing PBIO file and let the pipeline read it back.
    data_file = Path(tempfile.mkdtemp()) / "watershed.pbio"
    records = write_watershed_file(data_file, dataset)
    print(f"wrote {records} records to PBIO data file {data_file}")

    print("final water-depth field (terminal Vis5D):")
    print(render_ascii(dataset.frame(dataset.timesteps - 1),
                       width=min(args.grid, 64)))
    print()

    transport = "tcp" if args.tcp else "inproc"
    print(f"running pipeline over {transport} transport ...\n")
    report = run_pipeline(data_file=data_file, transport=transport,
                          presend_factor=2, feedback_every=3)

    print(f"pipeline finished in {report.elapsed_seconds:.3f}s")
    print(f"frames delivered: {report.frames_per_gui} "
          f"(total {report.total_frames})")
    print(f"control messages applied by flow2d: "
          f"{report.control_messages_applied}\n")

    print("per-component message counts:")
    for name, counts in report.component_messages.items():
        print(f"  {name:10s} in={counts['in']}")
        print(f"  {'':10s} out={counts['out']}")

    print("\nGUI 1 render statistics (flow magnitude per frame):")
    print(f"  {'t':>3s} {'cells':>6s} {'min':>12s} {'mean':>12s} "
          f"{'max':>12s}")
    for frame in report.gui_stats[0]:
        print(f"  {frame['timestep']:>3d} {frame['cells']:>6d} "
              f"{frame['min']:>12.3e} {frame['mean']:>12.3e} "
              f"{frame['max']:>12.3e}")


if __name__ == "__main__":
    main()
