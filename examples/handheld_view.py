#!/usr/bin/env python
"""Runtime type extension: a handheld customizes remote metadata.

The paper's future-work scenario (section 1): "less capable
visualization engines such as handhelds can customize remote metadata
for their own needs."  A full-fat sender streams complete ``GridMeta``
records; a bandwidth- and memory-constrained client derives a
three-field *view* of the discovered format, binds it, and receives
exactly those fields from unmodified senders — no server-side changes,
no recompilation anywhere.

Run:  python examples/handheld_view.py
"""

from repro import IOContext
from repro.core.views import derive_view, view_conversion_names
from repro.hydrology import generate_watershed, hydrology_xmit
from repro.pbio.format_server import FormatServer
from repro.tools.inspect import describe_format


def main() -> None:
    xmit = hydrology_xmit()
    server = FormatServer()

    # the unmodified data source: full GridMeta records
    sender = IOContext(format_server=server)
    full_fmt = xmit.register_with_context(sender, "GridMeta")
    print("sender's format (full):")
    print(describe_format(full_fmt))

    # the handheld derives its own reduced view at run time
    view_ir = derive_view(
        xmit.ir, "GridMeta",
        fields=["timestep", "min_depth", "max_depth", "mean_depth"],
        name="GridMetaHandheld")
    xmit.ir.add_format(view_ir)
    handheld = IOContext(format_server=server)
    view_fmt = xmit.register_with_context(handheld, "GridMetaHandheld")
    kept, dropped = view_conversion_names(
        xmit.ir.format("GridMeta"), view_ir)
    print(f"handheld keeps {list(kept)}")
    print(f"handheld drops {list(dropped)}\n")

    # stream a synthetic watershed through
    dataset = generate_watershed(nx=32, ny=32, timesteps=5)
    print(f"{'t':>3s} {'min':>10s} {'mean':>10s} {'max':>10s}   "
          f"(full record: {full_fmt.field_list.record_length} B "
          f"struct; view: {view_fmt.field_list.record_length} B)")
    for t in range(dataset.timesteps):
        wire = sender.encode("GridMeta", dataset.meta_record(t))
        small = handheld.decode_as(wire, "GridMetaHandheld")
        print(f"{small['timestep']:>3d} {small['min_depth']:>10.4f} "
              f"{small['mean_depth']:>10.4f} "
              f"{small['max_depth']:>10.4f}")
        assert set(small) == {"timestep", "min_depth", "max_depth",
                              "mean_depth"}

    print("\nthe handheld never saw gauges, georeferencing, or any "
          "field it did not ask for.")


if __name__ == "__main__":
    main()
