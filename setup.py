"""Legacy setup shim: this environment has no `wheel` package, so the
PEP 517 editable path is unavailable; `pip install -e .` falls back to
`setup.py develop` through this file."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "XMIT reproduction: open XML-based metadata for efficient "
        "binary HPC communication (HPDC 2001)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    entry_points={
        "console_scripts": [
            "xmitgen=repro.tools.xmitgen:main",
            "repro-inspect=repro.tools.inspect:main",
        ],
    },
)
