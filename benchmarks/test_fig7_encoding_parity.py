"""Fig. 7 — structure encoding times, native PBIO metadata vs
XMIT-generated metadata.

The paper's claim: "the XMIT translation process results in native
metadata that is just as efficient as compiled-in metadata" — encode
times are indistinguishable across Hydrology records from ~48 bytes to
the 262176-byte frame.  Each (record, metadata path) pair is one
benchmark; a final check asserts the parity numerically.
"""

import pytest

from repro.bench import workloads
from repro.bench.rdm import pbio_register, xmit_register
from repro.bench.timing import time_callable

_raw = workloads.encoding_cases()
CASES = {
    "JoinRequest": _raw[0],
    "ControlMsg": _raw[1],
    "GridMeta": _raw[2],
    "SimpleData-262K": _raw[3],
}


def _encoder(register, case):
    ctx = register()
    fmt = ctx.lookup_format(case["name"])
    encoder = ctx.encoder_for(fmt)
    record = case["record"]
    return lambda: encoder.encode_body(record)


@pytest.mark.parametrize("label", list(CASES))
@pytest.mark.benchmark(group="fig7-encode")
def test_fig7_encode_native_metadata(label, benchmark):
    case = CASES[label]
    encode = _encoder(lambda: pbio_register(case["specs"],
                                            case["name"]), case)
    benchmark(encode)


@pytest.mark.parametrize("label", list(CASES))
@pytest.mark.benchmark(group="fig7-encode")
def test_fig7_encode_xmit_metadata(label, benchmark):
    case = CASES[label]
    encode = _encoder(lambda: xmit_register(case["xsd"],
                                            case["name"]), case)
    benchmark(encode)


@pytest.mark.benchmark(group="fig7-parity")
def test_fig7_parity_assertion(benchmark):
    """XMIT-generated metadata encodes at parity with compiled-in
    metadata: identical format IDs imply identical compiled encoders,
    and measured times agree within noise."""

    def sweep():
        out = {}
        for label, case in CASES.items():
            native = _encoder(lambda: pbio_register(case["specs"],
                                                    case["name"]),
                              case)
            via_xmit = _encoder(lambda: xmit_register(case["xsd"],
                                                      case["name"]),
                                case)
            out[label] = (time_callable(native, repeat=3).best,
                          time_callable(via_xmit, repeat=3).best)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for label, (native, via_xmit) in results.items():
        ratio = via_xmit / native
        assert 0.5 < ratio < 2.0, (label, native, via_xmit)
