"""Section 4.2 — registration cost amortizes across messages.

"This allows any increased cost of discovery and registration to be
amortized across the entire set of messages sent using a particular
metadata format."  The bench measures total cost of (register once +
send N) for the XMIT path, and shows the per-message overhead of
remote discovery decaying toward zero; it also finds where the
XMIT+binary total undercuts an XML-wire sender that skipped
registration entirely (which is message #1 or very near it).
"""

import pytest

from repro.bench import workloads
from repro.bench.rdm import pbio_register, xmit_register
from repro.bench.timing import time_callable
from repro.wire import XMLWireCodec

CASE = [c for c in workloads.hydrology_cases()
        if c["name"] == "SimpleData"][0]
RECORD = workloads.simple_data_record(256)
COUNTS = (1, 10, 100, 1000)


def _costs():
    xmit_reg = time_callable(
        lambda: xmit_register(CASE["xsd"], "SimpleData"),
        repeat=3).best
    pbio_reg = time_callable(
        lambda: pbio_register(CASE["specs"], "SimpleData"),
        repeat=3).best
    ctx = pbio_register(CASE["specs"], "SimpleData")
    encoder = ctx.encoder_for(ctx.lookup_format("SimpleData"))
    send = time_callable(lambda: encoder.encode_body(RECORD),
                         repeat=3).best
    xml = XMLWireCodec(ctx.lookup_format("SimpleData"))
    xml_send = time_callable(lambda: xml.encode(RECORD), repeat=3,
                             target_batch_seconds=0.01).best
    return xmit_reg, pbio_reg, send, xml_send


@pytest.mark.parametrize("n", COUNTS)
def test_s42_xmit_total_cost(n, benchmark):
    """register via XMIT once + encode n messages."""
    benchmark.group = f"s42-total-{n}msgs"
    ctx = xmit_register(CASE["xsd"], "SimpleData")
    encoder = ctx.encoder_for(ctx.lookup_format("SimpleData"))

    def run():
        for _ in range(n):
            encoder.encode_body(RECORD)

    benchmark.pedantic(run, rounds=3, iterations=1)


@pytest.mark.benchmark(group="s42-amortization")
def test_s42_overhead_decays(benchmark):
    xmit_reg, pbio_reg, send, xml_send = benchmark.pedantic(
        _costs, rounds=1, iterations=1)
    overhead = xmit_reg - pbio_reg
    per_message = [overhead / n for n in COUNTS]
    # strictly decaying, and negligible versus a send by n=1000
    assert per_message == sorted(per_message, reverse=True)
    assert per_message[-1] < send

    # crossover with XML-as-wire (no registration at all): the
    # message number where XMIT's registration has paid for itself
    crossover = overhead / (xml_send - send)
    assert crossover < 2.0, (crossover, xmit_reg, xml_send, send)
