"""Ablation — registration cost tracks message *complexity*.

Section 4.4: "registration time does not necessarily increase in
strict proportion to message size, but instead corresponds more
closely to the complexity of the message (in terms of size, number of
fields, and nested definitions)."  Two sweeps make that measurable:

* fixed byte size, growing field count — XMIT cost must grow;
* fixed field count, growing byte size (one array field widened) —
  XMIT cost must stay flat.
"""

import pytest

from repro.bench.rdm import xmit_register
from repro.bench.timing import time_callable

FIELD_COUNTS = (2, 8, 32)
ARRAY_SIZES = (4, 64, 1024)


def _many_fields_xsd(n: int) -> str:
    """n 4-byte fields -> byte size grows with n (declared inline)."""
    elements = "\n".join(
        f'    <xsd:element name="f{i}" type="xsd:int" />'
        for i in range(n))
    return ('<xsd:schema '
            'xmlns:xsd="http://www.w3.org/2001/XMLSchema">\n'
            f'  <xsd:complexType name="Sweep">\n{elements}\n'
            "  </xsd:complexType>\n</xsd:schema>\n")


def _wide_array_xsd(elements: int) -> str:
    """2 fields, one a fixed array of *elements* -> byte size grows
    while complexity is constant."""
    return ('<xsd:schema '
            'xmlns:xsd="http://www.w3.org/2001/XMLSchema">\n'
            '  <xsd:complexType name="Sweep">\n'
            '    <xsd:element name="id" type="xsd:int" />\n'
            f'    <xsd:element name="v" type="xsd:float" '
            f'maxOccurs="{elements}" />\n'
            "  </xsd:complexType>\n</xsd:schema>\n")


@pytest.mark.parametrize("fields", FIELD_COUNTS)
def test_abl_cost_vs_field_count(fields, benchmark):
    benchmark.group = "abl-complexity-fields"
    xsd = _many_fields_xsd(fields)
    benchmark(xmit_register, xsd, "Sweep")


@pytest.mark.parametrize("elements", ARRAY_SIZES)
def test_abl_cost_vs_byte_size(elements, benchmark):
    benchmark.group = "abl-complexity-bytes"
    xsd = _wide_array_xsd(elements)
    benchmark(xmit_register, xsd, "Sweep")


@pytest.mark.benchmark(group="abl-complexity-shape")
def test_abl_complexity_drives_cost_not_bytes(benchmark):
    def sweep():
        by_fields = [time_callable(
            lambda x=_many_fields_xsd(n): xmit_register(x, "Sweep"),
            repeat=3).best for n in FIELD_COUNTS]
        by_bytes = [time_callable(
            lambda x=_wide_array_xsd(n): xmit_register(x, "Sweep"),
            repeat=3).best for n in ARRAY_SIZES]
        return by_fields, by_bytes

    by_fields, by_bytes = benchmark.pedantic(sweep, rounds=1,
                                             iterations=1)
    # 16x more fields must cost measurably more (> 2x)
    assert by_fields[-1] > 2.0 * by_fields[0], by_fields
    # 256x more bytes in one array must NOT (< 1.5x)
    assert by_bytes[-1] < 1.5 * by_bytes[0], by_bytes
