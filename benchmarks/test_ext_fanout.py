"""Extension experiment — server fan-out cost per client, on sockets.

Section 1 motivates binary transport with "server-based applications
in which single servers must provide information to large numbers of
clients", where "scalability to many information clients ... implies
the need to reduce per-client or per-source processing".  Three
strategies for broadcasting one event stream to N loopback-socket
subscribers:

* ``encode-once``      — :class:`BroadcastPublisher`: marshal once,
  queue the same frame bytes to every client, drain with
  scatter-gather writes from one event-loop thread;
* ``encode-per-client`` — marshal the record N times and ``sendall``
  each copy (what naive per-connection APIs do);
* ``xml-per-client``    — XML marshal N times (text protocols cannot
  share encodings across clients that renegotiate formatting).

The sweep lands in ``BENCH_fanout.json`` (written by
``conftest.pytest_sessionfinish``); ``benchmarks/check_fanout_gate.py``
enforces the acceptance shape — encode-once per-client cost stays
roughly flat from N=1 to N=128 while the per-client strategies pay
full marshaling for every subscriber — as a separate CI step.
In-test assertions use looser margins so machine noise cannot flake
the suite.
"""

from __future__ import annotations

import selectors
import socket
import time

import pytest

from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.transport.broadcast import BroadcastPublisher
from repro.transport.messages import Frame, FrameType
from repro.transport.tcp import TCPChannel, TCPListener
from repro.wire import XMLWireCodec

FANOUT = [1, 8, 32, 128]
MESSAGES = 200
EVENT = {"centerID": "ZTL", "airline": "DAL", "flightNum": 1023,
         "off": 987654321}
SPECS = [("centerID", "string"), ("airline", "string"),
         ("flightNum", "integer", 4), ("off", "unsigned integer", 8)]

pytestmark = pytest.mark.timeout(600)


def _context() -> IOContext:
    ctx = IOContext(format_server=FormatServer())
    ctx.register_layout("ASDOffEvent", SPECS)
    return ctx


class _Drainer:
    """One selector thread that reads and discards everything arriving
    on the subscriber ends, so sender-side cost is what's measured."""

    def __init__(self) -> None:
        import threading
        self._selector = selectors.DefaultSelector()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="fanout-drainer")
        self.bytes_drained = 0

    def watch(self, sock: socket.socket) -> None:
        sock.setblocking(False)
        self._selector.register(sock, selectors.EVENT_READ)

    def start(self) -> "_Drainer":
        self._thread.start()
        return self

    def _run(self) -> None:
        while not self._stop.is_set():
            for key, _events in self._selector.select(0.05):
                try:
                    while True:
                        chunk = key.fileobj.recv(1 << 16)
                        if not chunk:
                            self._selector.unregister(key.fileobj)
                            break
                        self.bytes_drained += len(chunk)
                except BlockingIOError:
                    continue
                except OSError:
                    try:
                        self._selector.unregister(key.fileobj)
                    except (KeyError, ValueError):
                        pass

    def close(self) -> None:
        self._stop.set()
        self._thread.join(5)
        self._selector.close()


def _measure_encode_once(clients: int, messages: int) -> float:
    ctx = _context()
    pub = BroadcastPublisher(ctx, policy="block",
                             max_queue_bytes=16 * 1024 * 1024).start()
    drainer = _Drainer()
    socks = [socket.create_connection((pub.host, pub.port))
             for _ in range(clients)]
    for sock in socks:
        drainer.watch(sock)
    drainer.start()
    try:
        assert pub.wait_for_subscribers(clients, timeout=10)
        publish = pub.publish
        start = time.perf_counter()
        for _ in range(messages):
            publish("ASDOffEvent", EVENT)
        assert pub.flush(timeout=60)
        elapsed = time.perf_counter() - start
    finally:
        pub.close()
        drainer.close()
        for sock in socks:
            sock.close()
    return elapsed


def _per_client_channels(clients: int, drainer: _Drainer):
    listener = TCPListener()
    channels = []
    for _ in range(clients):
        channels.append(TCPChannel.connect(listener.host,
                                           listener.port))
        drainer.watch(listener.accept(timeout=5)._sock)
    listener.close()
    return channels


def _measure_encode_per_client(clients: int, messages: int) -> float:
    ctx = _context()
    drainer = _Drainer()
    channels = _per_client_channels(clients, drainer)
    drainer.start()
    try:
        encode = ctx.encode
        start = time.perf_counter()
        for _ in range(messages):
            for channel in channels:
                channel.send(Frame(FrameType.DATA,
                                   encode("ASDOffEvent", EVENT)))
        elapsed = time.perf_counter() - start
    finally:
        for channel in channels:
            channel.close()
        drainer.close()
    return elapsed


def _measure_xml_per_client(clients: int, messages: int) -> float:
    ctx = _context()
    codec = XMLWireCodec(ctx.lookup_format("ASDOffEvent"))
    drainer = _Drainer()
    channels = _per_client_channels(clients, drainer)
    drainer.start()
    try:
        encode = codec.encode
        start = time.perf_counter()
        for _ in range(messages):
            for channel in channels:
                channel.send(Frame(FrameType.DATA, encode(EVENT)))
        elapsed = time.perf_counter() - start
    finally:
        for channel in channels:
            channel.close()
        drainer.close()
    return elapsed


_STRATEGIES = {
    "encode_once": _measure_encode_once,
    "encode_per_client": _measure_encode_per_client,
    "xml_per_client": _measure_xml_per_client,
}


def test_fanout_sweep_recorded(fanout_metrics):
    """Run the three strategies across the subscriber sweep, record
    the numbers for the CI gate, and assert conservative shapes."""
    for name, measure in _STRATEGIES.items():
        rows = {}
        for clients in FANOUT:
            # one throwaway warm round so compiled plans, the XML
            # serializer and the TCP stacks are all hot before timing
            measure(clients, 10)
            elapsed = measure(clients, MESSAGES)
            rows[str(clients)] = {
                "clients": clients,
                "messages": MESSAGES,
                "total_s": elapsed,
                "per_message_us": elapsed / MESSAGES * 1e6,
                "per_client_us":
                    elapsed / (MESSAGES * clients) * 1e6,
            }
        fanout_metrics[name] = rows

    once = fanout_metrics["encode_once"]
    per_client = fanout_metrics["encode_per_client"]
    xml = fanout_metrics["xml_per_client"]

    # Encode-once amortizes marshaling: per-client cost must not grow
    # meaningfully with N (gate: 2x; in-test: 3x against noise).
    flat = [once[str(n)]["per_client_us"] for n in FANOUT]
    assert max(flat) <= 3.0 * flat[0], flat

    # Per-client marshaling strategies pay for every subscriber: at
    # scale the XML broadcast must cost several times encode-once.
    n_max = str(FANOUT[-1])
    assert xml[n_max]["total_s"] > 2.0 * once[n_max]["total_s"]
    assert per_client[n_max]["total_s"] > once[n_max]["total_s"]


@pytest.mark.benchmark(group="ext-fanout")
def test_ext_fanout_encode_once_sockets(benchmark):
    """pytest-benchmark row: encode-once broadcast to 32 subscribers."""
    benchmark.pedantic(
        lambda: _measure_encode_once(32, 50), rounds=3, iterations=1)


@pytest.mark.benchmark(group="ext-fanout")
def test_ext_fanout_encode_per_client_sockets(benchmark):
    benchmark.pedantic(
        lambda: _measure_encode_per_client(32, 50), rounds=3,
        iterations=1)


@pytest.mark.benchmark(group="ext-fanout")
def test_ext_fanout_xml_per_client_sockets(benchmark):
    benchmark.pedantic(
        lambda: _measure_xml_per_client(32, 50), rounds=3,
        iterations=1)
