"""Extension experiment — server fan-out cost per client.

Section 1 motivates binary transport with "server-based applications
in which single servers must provide information to large numbers of
clients", where "scalability to many information clients ... implies
the need to reduce per-client or per-source processing".  Three
strategies for broadcasting one event to N clients:

* ``encode-once``  — marshal once, send the same PBIO bytes N times
  (zero marshaling work per client);
* ``encode-per-client`` — marshal the record N times (what naive
  per-connection APIs do);
* ``xml-per-client``    — XML marshal N times (text protocols cannot
  share encodings across clients that renegotiate formatting).
"""

import pytest

from repro.bench.timing import time_callable
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.wire import XMLWireCodec

CLIENTS = 32
EVENT = {"centerID": "ZTL", "airline": "DAL", "flightNum": 1023,
         "off": 987654321}
SPECS = [("centerID", "string"), ("airline", "string"),
         ("flightNum", "integer", 4), ("off", "unsigned integer", 8)]


def _context() -> IOContext:
    ctx = IOContext(format_server=FormatServer())
    ctx.register_layout("ASDOffEvent", SPECS)
    return ctx


@pytest.mark.benchmark(group="ext-fanout")
def test_ext_fanout_encode_once(benchmark):
    ctx = _context()
    sink = []

    def broadcast():
        sink.clear()
        wire = ctx.encode("ASDOffEvent", EVENT)
        for _ in range(CLIENTS):
            sink.append(wire)
    benchmark(broadcast)


@pytest.mark.benchmark(group="ext-fanout")
def test_ext_fanout_encode_per_client(benchmark):
    ctx = _context()
    sink = []

    def broadcast():
        sink.clear()
        for _ in range(CLIENTS):
            sink.append(ctx.encode("ASDOffEvent", EVENT))
    benchmark(broadcast)


@pytest.mark.benchmark(group="ext-fanout")
def test_ext_fanout_xml_per_client(benchmark):
    ctx = _context()
    codec = XMLWireCodec(ctx.lookup_format("ASDOffEvent"))
    sink = []

    def broadcast():
        sink.clear()
        for _ in range(CLIENTS):
            sink.append(codec.encode(EVENT))
    benchmark(broadcast)


@pytest.mark.benchmark(group="ext-fanout-shape")
def test_ext_fanout_ordering(benchmark):
    def sweep():
        ctx = _context()
        codec = XMLWireCodec(ctx.lookup_format("ASDOffEvent"))

        def once():
            wire = ctx.encode("ASDOffEvent", EVENT)
            return [wire for _ in range(CLIENTS)]

        def per_client():
            return [ctx.encode("ASDOffEvent", EVENT)
                    for _ in range(CLIENTS)]

        def xml():
            return [codec.encode(EVENT) for _ in range(CLIENTS)]

        return (time_callable(once, repeat=3).best,
                time_callable(per_client, repeat=3).best,
                time_callable(xml, repeat=3).best)

    once, per_client, xml = benchmark.pedantic(sweep, rounds=1,
                                               iterations=1)
    assert once < per_client < xml
    assert per_client / once > 3   # marshaling dominates fan-out
    assert xml / per_client > 3    # and XML marshaling dominates that
