"""Shared helpers for the benchmark harness.

Every figure/table of the paper's evaluation section has one
``test_*`` module here; the pytest-benchmark summary table, grouped per
figure, is the machine-readable regeneration of that figure.  For the
paper-styled rows (struct size / encoded size / RDM columns), run
``python benchmarks/regen_experiments.py``, which produces the tables
embedded in EXPERIMENTS.md.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.pbio.layout import field_list_for

#: Where the fused-codec acceptance numbers land; consumed by
#: ``benchmarks/check_fused_gate.py`` in CI.
BENCH_FUSED_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_fused.json"

#: Where the broadcast fan-out sweep lands; consumed by
#: ``benchmarks/check_fanout_gate.py`` in CI.
BENCH_FANOUT_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_fanout.json"

#: Where the telemetry-overhead numbers land; consumed by
#: ``benchmarks/check_obs_gate.py`` in CI.
BENCH_OBS_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_obs.json"

#: Where the decode-hardening numbers land; consumed by
#: ``benchmarks/check_hardening_gate.py`` in CI.
BENCH_HARDENING_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_hardening.json"

#: Where the down-conversion cost numbers land; consumed by
#: ``benchmarks/check_evolution_gate.py`` in CI.
BENCH_EVOLUTION_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_evolution.json"

#: Where the bulk-array fast-path numbers land; consumed by
#: ``benchmarks/check_bulk_gate.py`` in CI.
BENCH_BULK_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_bulk.json"

#: Where the sharded fan-out matrix lands; consumed by
#: ``benchmarks/check_sharded_gate.py`` in CI.
BENCH_SHARDED_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_fanout_sharded.json"

#: Where the catalog-scale / warm-start numbers land; consumed by
#: ``benchmarks/check_catalog_gate.py`` in CI.
BENCH_CATALOG_PATH = Path(__file__).resolve().parents[1] / \
    "BENCH_catalog.json"

_FUSED_METRICS: dict = {}
_FANOUT_METRICS: dict = {}
_OBS_METRICS: dict = {}
_HARDENING_METRICS: dict = {}
_EVOLUTION_METRICS: dict = {}
_BULK_METRICS: dict = {}
_SHARDED_METRICS: dict = {}
_CATALOG_METRICS: dict = {}


def context_for_case(case) -> IOContext:
    """A fresh context with the case's format registered (compiled-in
    path)."""
    ctx = IOContext(format_server=FormatServer())
    subformats = None
    if case.get("subformats"):
        subformats = {}
        for name, specs in case["subformats"].items():
            subformats[name] = field_list_for(
                specs, architecture=ctx.architecture,
                subformats=dict(subformats))
    ctx.register_layout(case["name"], case["specs"],
                        subformats=subformats)
    return ctx


@pytest.fixture
def fresh_server() -> FormatServer:
    return FormatServer()


@pytest.fixture
def fused_metrics() -> dict:
    """Session-wide sink for the fused-codec acceptance numbers
    (``test_ext_fused_codec``); flushed to BENCH_fused.json at
    session end."""
    return _FUSED_METRICS


@pytest.fixture
def fanout_metrics() -> dict:
    """Session-wide sink for the fan-out sweep
    (``test_ext_fanout``); flushed to BENCH_fanout.json at session
    end."""
    return _FANOUT_METRICS


@pytest.fixture
def obs_metrics() -> dict:
    """Session-wide sink for the telemetry-overhead numbers
    (``test_ext_obs_overhead``); flushed to BENCH_obs.json at
    session end."""
    return _OBS_METRICS


@pytest.fixture
def hardening_metrics() -> dict:
    """Session-wide sink for the bounds-checked-decode cost numbers
    (``test_ext_hardening``); flushed to BENCH_hardening.json at
    session end."""
    return _HARDENING_METRICS


@pytest.fixture
def evolution_metrics() -> dict:
    """Session-wide sink for the sender-side down-conversion cost
    numbers (``test_abl_evolution_cost``); flushed to
    BENCH_evolution.json at session end."""
    return _EVOLUTION_METRICS


@pytest.fixture
def bulk_metrics() -> dict:
    """Session-wide sink for the bulk-array fast-path numbers
    (``test_ext_bulk``); flushed to BENCH_bulk.json at session
    end."""
    return _BULK_METRICS


@pytest.fixture
def sharded_metrics() -> dict:
    """Session-wide sink for the sharded fan-out matrix
    (``test_ext_fanout_sharded``); flushed to
    BENCH_fanout_sharded.json at session end."""
    return _SHARDED_METRICS


@pytest.fixture
def catalog_metrics() -> dict:
    """Session-wide sink for the catalog-scale and warm-start numbers
    (``test_ext_catalog``); flushed to BENCH_catalog.json at session
    end."""
    return _CATALOG_METRICS


def pytest_sessionfinish(session, exitstatus):
    if _FUSED_METRICS:
        BENCH_FUSED_PATH.write_text(
            json.dumps(_FUSED_METRICS, indent=2, sort_keys=True) + "\n")
    if _FANOUT_METRICS:
        BENCH_FANOUT_PATH.write_text(
            json.dumps(_FANOUT_METRICS, indent=2, sort_keys=True) + "\n")
    if _OBS_METRICS:
        BENCH_OBS_PATH.write_text(
            json.dumps(_OBS_METRICS, indent=2, sort_keys=True) + "\n")
    if _HARDENING_METRICS:
        BENCH_HARDENING_PATH.write_text(
            json.dumps(_HARDENING_METRICS, indent=2, sort_keys=True) +
            "\n")
    if _EVOLUTION_METRICS:
        BENCH_EVOLUTION_PATH.write_text(
            json.dumps(_EVOLUTION_METRICS, indent=2, sort_keys=True) +
            "\n")
    if _BULK_METRICS:
        BENCH_BULK_PATH.write_text(
            json.dumps(_BULK_METRICS, indent=2, sort_keys=True) + "\n")
    if _SHARDED_METRICS:
        BENCH_SHARDED_PATH.write_text(
            json.dumps(_SHARDED_METRICS, indent=2, sort_keys=True) +
            "\n")
    if _CATALOG_METRICS:
        BENCH_CATALOG_PATH.write_text(
            json.dumps(_CATALOG_METRICS, indent=2, sort_keys=True) +
            "\n")
