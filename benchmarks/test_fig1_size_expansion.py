"""Fig. 1 — XML encoding of ``SimpleData`` vs binary.

The paper shows the XML expansion of the ``SimpleData`` struct (3355
float values) is "considerably larger" — about 3x in its application
experiment — and cites 6-8x expansion factors for general records
([12]).  The benchmark measures encode time for both representations;
the size assertions pin the expansion factor.
"""

import pytest

from repro.bench import workloads
from repro.wire import PBIOWireCodec, XMLWireCodec

from benchmarks.conftest import context_for_case


def _simple_case():
    case = [c for c in workloads.hydrology_cases()
            if c["name"] == "SimpleData"][0]
    return dict(case, record=workloads.simple_data_record(
        workloads.FIG1_FLOATS))


@pytest.fixture(scope="module")
def codecs():
    case = _simple_case()
    ctx = context_for_case(case)
    fmt = ctx.lookup_format("SimpleData")
    return XMLWireCodec(fmt), PBIOWireCodec(fmt), case["record"]


@pytest.mark.benchmark(group="fig1-encode")
def test_fig1_xml_encode(codecs, benchmark):
    xml, _pbio, record = codecs
    data = benchmark(xml.encode, record)
    assert data.startswith(b"<SimpleData>")


@pytest.mark.benchmark(group="fig1-encode")
def test_fig1_binary_encode(codecs, benchmark):
    _xml, pbio, record = codecs
    benchmark(pbio.encode, record)


@pytest.mark.benchmark(group="fig1-size")
def test_fig1_size_expansion(codecs, benchmark):
    xml, pbio, record = codecs

    def measure():
        return len(xml.encode(record)), len(pbio.encode(record))

    xml_size, binary_size = benchmark(measure)
    expansion = xml_size / binary_size
    # paper: ~3x for this message; 6-8x is typical for small-valued
    # records.  Our floats print at full precision, landing in between.
    assert expansion > 3.0, (xml_size, binary_size)
