"""Fig. 6 — format registration cost for the Hydrology formats.

Same experiment as Fig. 3 on the application's real formats (152/20/
44/12 bytes ILP32).  The paper's observation to reproduce: the
primitive-heavy 152-byte ``GridMeta``-class structure shows a *higher*
RDM than the composition-heavy 180-byte proof-of-concept structure,
because XMIT's parse/generate work scales with element count, not byte
size.
"""

import pytest

from repro.bench import workloads
from repro.bench.rdm import measure_rdm, pbio_register, xmit_register

CASES = {case["name"]: case for case in workloads.hydrology_cases()}
NAMES = list(CASES)


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.benchmark(group="fig6-registration")
def test_fig6_pbio_registration(name, benchmark):
    case = CASES[name]
    benchmark(pbio_register, case["specs"], name)


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.benchmark(group="fig6-registration")
def test_fig6_xmit_registration(name, benchmark):
    case = CASES[name]
    benchmark(xmit_register, case["xsd"], name)


@pytest.mark.benchmark(group="fig6-rdm")
def test_fig6_primitive_heavy_has_highest_cost(benchmark):
    """GridMeta (15 fields, all primitives) must cost XMIT more to
    register than any other Hydrology format."""

    def sweep():
        return {name: measure_rdm(case["xsd"], name, case["specs"],
                                  repeat=3)
                for name, case in CASES.items()}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    xmit_times = {name: r.xmit.best for name, r in results.items()}
    assert xmit_times["GridMeta"] == max(xmit_times.values())
    rdms = [r.rdm for r in results.values()]
    assert all(1.0 < rdm < 25.0 for rdm in rdms), rdms
