"""Extension — cost of treating the wire as untrusted.

The hardening PR made every decode plan validate wire-derived
pointers and element counts before it touches or allocates anything
(``RecordDecoder(..., validate=True)``, the default everywhere).  The
pre-hardening closures survive behind ``validate=False`` for exactly
one purpose: being the baseline this benchmark measures against.

Per shape and per plan (fused / per-field) two decoders run over the
same encoded body:

* ``legacy``:    the trusting pre-hardening closures;
* ``validated``: the shipping bounds-checked closures.

The ratios land in ``BENCH_hardening.json`` (written by
``conftest.pytest_sessionfinish``); ``benchmarks/check_hardening_gate
.py`` enforces the acceptance threshold — validated decode stays
within 1.10x of legacy on every gated shape.  Scalar-only shapes have
no pointers to check, so their ratio is a measurement control (~1.0x)
rather than a gate.  In-test assertions use looser margins so machine
noise cannot flake the suite.
"""

from __future__ import annotations

import pytest

from repro.bench.timing import time_callable
from repro.hydrology.formats import GAUGE_COUNT, hydrology_field_specs
from repro.pbio.context import IOContext
from repro.pbio.decode import RecordDecoder
from repro.pbio.encode import RecordEncoder
from repro.pbio.format_server import FormatServer

_SPECS = hydrology_field_specs()

#: ``gate`` marks shapes with wire-derived pointers/counts — the ones
#: the validation actually touches and the 1.10x threshold applies
#: to.  ``spec_name`` picks the layout; shapes may share one
#: (SimpleData at two array sizes).
CASES = {
    "FlowParams": {
        "gate": False,  # scalar-only: no pointers, control shape
        "spec_name": "FlowParams",
        "record": dict(timestep=3, nx=64, ny=64, dx=30.0, dy=30.0,
                       dt=1.5, viscosity=0.125, rainfall=0.0625,
                       iterations=100, flags=0, elapsed=12.5),
    },
    "GridMeta": {
        "gate": True,  # sized array: count clamp on the hot path
        "spec_name": "GridMeta",
        "record": dict(timestep=3, nx=64, ny=64, west=0.0,
                       east=1920.0, south=0.0, north=1920.0,
                       cell_size=30.0, no_data=-9999.0, min_depth=0.0,
                       max_depth=2.5, mean_depth=0.25,
                       total_volume=1234.5, gauge_count=GAUGE_COUNT,
                       gauges=[i / 4 for i in range(GAUGE_COUNT)]),
    },
    "ControlMsg": {
        "gate": True,  # string-dominated: per-string pointer checks
        "spec_name": "ControlMsg",
        "record": dict(command="set_viscosity", target="flow2d",
                       timestep=5, value=0.375),
    },
    "SimpleData-1k": {
        "gate": True,
        "spec_name": "SimpleData",
        "record": dict(timestep=1, size=1024,
                       data=[i / 8 for i in range(1024)]),
    },
    "SimpleData-4k": {
        "gate": True,
        "spec_name": "SimpleData",
        "record": dict(timestep=1, size=4096,
                       data=[i / 8 for i in range(4096)]),
    },
}


def _body_for(label):
    ctx = IOContext(format_server=FormatServer())
    name = CASES[label]["spec_name"]
    fmt = ctx.register_layout(name, _SPECS[name])
    wire = RecordEncoder(fmt).encode_body(CASES[label]["record"])
    return fmt, bytes(wire)


def _ab_best(fn_a, fn_b, *, rounds: int = 5):
    """Best per-call time for two callables measured in alternating
    rounds, so slow machine drift hits both sides equally instead of
    whichever happened to run second."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        best_a = min(best_a, time_callable(fn_a, repeat=3).best)
        best_b = min(best_b, time_callable(fn_b, repeat=3).best)
    return best_a, best_b


@pytest.mark.parametrize("label", list(CASES))
@pytest.mark.parametrize("path", ["validated", "legacy"])
@pytest.mark.benchmark(group="ext-hardening-decode")
def test_decode_latency(label, path, benchmark):
    fmt, body = _body_for(label)
    decoder = RecordDecoder(fmt, validate=path == "validated")
    benchmark(lambda: decoder.decode(body))


def test_hardening_cost_recorded(hardening_metrics):
    """Measure validated vs legacy decode on every shape and plan;
    record the ratios for the CI gate and assert conservative
    ceilings here."""
    shapes = {}
    for label, case in CASES.items():
        fmt, body = _body_for(label)
        entry = {"gate": case["gate"]}
        for plan, fuse in (("fused", True), ("plain", False)):
            validated = RecordDecoder(fmt, fuse=fuse)
            legacy = RecordDecoder(fmt, fuse=fuse, validate=False)
            # both plans must agree on well-formed input before any
            # timing means anything
            assert validated.decode(body) == legacy.decode(body)
            val_t, leg_t = _ab_best(
                lambda: validated.decode(body),
                lambda: legacy.decode(body))
            entry[plan] = {
                "validated_us": val_t * 1e6,
                "legacy_us": leg_t * 1e6,
                "validated_over_legacy": val_t / leg_t,
            }
            if case["gate"]:
                # loose ceiling; check_hardening_gate.py enforces the
                # real 1.10x
                assert val_t / leg_t < 1.35, (label, plan, entry)
        shapes[label] = entry

    hardening_metrics["decode"] = shapes
