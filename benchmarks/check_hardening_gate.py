#!/usr/bin/env python
"""CI regression gate for the bounds-checked decode path.

Reads ``BENCH_hardening.json`` (written when the benchmark suite runs
``benchmarks/test_ext_hardening.py``) and fails unless validated
decode stays within ``VALIDATED_MAX``x of the pre-hardening
(``validate=False``) decode on every gated shape, for both the fused
and the per-field plan.

Usage::

    python benchmarks/check_hardening_gate.py \
        [path/to/BENCH_hardening.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

VALIDATED_MAX = 1.10


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[1] / "BENCH_hardening.json"
    if not path.exists():
        print(f"gate: {path} missing — run the benchmark suite first "
              "(PYTHONPATH=src python -m pytest "
              "benchmarks/test_ext_hardening.py)")
        return 2
    data = json.loads(path.read_text())

    failures: list[str] = []
    shapes = data.get("decode", {})
    if not shapes:
        failures.append("no decode shapes recorded")
    for shape, entry in sorted(shapes.items()):
        for plan in ("fused", "plain"):
            m = entry.get(plan)
            if m is None:
                failures.append(f"{shape}: {plan} plan missing")
                continue
            line = (f"decode {shape:14s} {plan:5s}  "
                    f"legacy {m['legacy_us']:7.2f}us  "
                    f"validated {m['validated_us']:7.2f}us  "
                    f"{m['validated_over_legacy']:.3f}x" +
                    ("" if entry.get("gate") else "  (not gated)"))
            print(line)
            if not entry.get("gate"):
                continue
            if m["validated_over_legacy"] > VALIDATED_MAX:
                failures.append(
                    f"validated {plan} decode on {shape} is "
                    f"{m['validated_over_legacy']:.3f}x the "
                    f"pre-hardening decode, above the "
                    f"{VALIDATED_MAX}x gate")

    if failures:
        print("\nGATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
