"""Extension — warm-cache re-registration RDM.

`test_abl_complexity_rdm.py` measures the *cold* path: every XMIT
registration re-parses and recompiles the schema document.  The
registry's digest-keyed document cache changes the steady state: a
re-registration inside the TTL fetches nothing and recompiles nothing,
so the RDM of the *n-th* registration collapses toward the PBIO
baseline.  This bench records both multipliers side by side and
verifies the fetch reduction by counters, not timing: the warm path
must perform strictly fewer resolver hits than the cold path.
"""

import pytest

from repro.bench import workloads
from repro.bench.rdm import pbio_register
from repro.bench.timing import time_callable
from repro.core.toolkit import XMIT
from repro.http.retry import RetryPolicy
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer
from repro.testing import FaultInjectingResolver

CASE = [c for c in workloads.hydrology_cases()
        if c["name"] == "SimpleData"][0]
ROUNDS = 20

_resolver = FaultInjectingResolver("cached-rdm").install()
URL = _resolver.publish("simple.xsd", CASE["xsd"])


def _cold_register() -> None:
    """Fresh toolkit per registration: fetch + parse + compile + bind."""
    xmit = XMIT(retry=RetryPolicy(attempts=1))
    xmit.load_url(URL)
    ctx = IOContext(format_server=FormatServer())
    xmit.register_with_context(ctx, "SimpleData")


def _warm_register(xmit: XMIT) -> None:
    """Re-registration through a warm registry: cache hit, no fetch."""
    xmit.load_url(URL)
    ctx = IOContext(format_server=FormatServer())
    xmit.register_with_context(ctx, "SimpleData")


@pytest.mark.benchmark(group="ext-cached-rdm")
def test_ext_cold_registration(benchmark):
    benchmark(_cold_register)


@pytest.mark.benchmark(group="ext-cached-rdm")
def test_ext_warm_registration(benchmark):
    xmit = XMIT(cache_ttl=3600.0)
    _warm_register(xmit)  # prime the cache once
    benchmark(_warm_register, xmit)


@pytest.mark.benchmark(group="ext-cached-rdm-summary")
def test_ext_cached_rdm_vs_cold(benchmark):
    def sweep():
        pbio = time_callable(
            lambda: pbio_register(CASE["specs"], "SimpleData"),
            repeat=5).best

        cold_calls_before = _resolver.calls["simple.xsd"]
        cold = time_callable(_cold_register, repeat=ROUNDS).best
        cold_fetches = _resolver.calls["simple.xsd"] - \
            cold_calls_before

        warm_xmit = XMIT(cache_ttl=3600.0)
        _warm_register(warm_xmit)  # prime: the once-per-TTL fetch
        warm_calls_before = _resolver.calls["simple.xsd"]
        warm = time_callable(lambda: _warm_register(warm_xmit),
                             repeat=ROUNDS).best
        warm_fetches = _resolver.calls["simple.xsd"] - \
            warm_calls_before
        return (pbio, cold, warm, cold_fetches, warm_fetches,
                warm_xmit.discovery_stats.snapshot())

    pbio, cold, warm, cold_fetches, warm_fetches, stats = \
        benchmark.pedantic(sweep, rounds=1, iterations=1)

    rdm_cold = cold / pbio
    rdm_warm = warm / pbio
    benchmark.extra_info["rdm_cold"] = round(rdm_cold, 3)
    benchmark.extra_info["rdm_warm"] = round(rdm_warm, 3)
    benchmark.extra_info["cold_fetches"] = cold_fetches
    benchmark.extra_info["warm_fetches"] = warm_fetches

    # counter-verified, not timing-dependent: every cold registration
    # fetched; the warm path fetched nothing at all inside the TTL
    assert cold_fetches >= ROUNDS
    assert warm_fetches < cold_fetches
    assert warm_fetches == 0
    assert stats["compiles"] == 1
    assert stats["cache_hits"] >= ROUNDS

    # the timing claim is secondary but should hold comfortably: a
    # warm re-registration skips parse+compile, the cold RDM's
    # dominant cost
    assert rdm_warm < rdm_cold
