"""Fig. 8 — send-side encode times for various message sizes and BCMs.

The paper's log-scale figure: XML far above everything, MPICH and
CORBA in the middle, PBIO at the bottom, over binary data sizes of
100 B, 1 KB, 10 KB and 100 KB.  One benchmark per (codec, size) point;
the shape assertions check the ordering the figure shows.
"""

import pytest

from repro.bench import workloads
from repro.bench.timing import time_callable
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.wire import codec_by_name

CODECS = ("xml", "mpi", "cdr", "xdr", "pbio")
SIZES = workloads.FIG8_SIZES


def _format():
    return IOFormat("SimpleData", field_list_for(
        [("timestep", "integer", 4), ("size", "integer", 4),
         ("data", "float[size]", 4)]))


def _point(codec_name: str, size: int):
    codec = codec_by_name(codec_name, _format())
    record = workloads.simple_data_record_for_bytes(size)
    return codec, record


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("codec_name", CODECS)
def test_fig8_send_encode(codec_name, size, benchmark):
    benchmark.group = f"fig8-{size}b"
    codec, record = _point(codec_name, size)
    if codec_name == "xml" and size >= 100_000:
        benchmark.pedantic(codec.encode, args=(record,), rounds=3,
                           iterations=1)
    else:
        benchmark(codec.encode, record)


@pytest.mark.benchmark(group="fig8-shape")
def test_fig8_ordering_matches_paper(benchmark):
    """XML slowest by orders of magnitude, PBIO fastest, MPI/CDR/XDR
    in between — at every size."""

    def sweep():
        table = {}
        for size in SIZES:
            row = {}
            for codec_name in CODECS:
                codec, record = _point(codec_name, size)
                repeat = 2 if codec_name == "xml" else 3
                row[codec_name] = time_callable(
                    lambda: codec.encode(record), repeat=repeat,
                    target_batch_seconds=0.01).best
            table[size] = row
        return table

    table = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for size, row in table.items():
        assert row["pbio"] == min(row.values()), (size, row)
        assert row["xml"] == max(row.values()), (size, row)
        # "2 to 4 orders of magnitude" (section 4.1) — at the large
        # end the gap must exceed two decades
        if size >= 10_000:
            assert row["xml"] / row["pbio"] > 100, (size, row)
        # The paper cites MPI ~10x PBIO for ~100-byte structures; at
        # larger sizes PBIO's contiguous copy pulls further ahead of
        # MPI's per-element typemap walk, so only a lower bound holds.
        ratio = row["mpi"] / row["pbio"]
        if size == 100:
            assert 1.5 < ratio < 100, (size, row)
        else:
            assert ratio > 2, (size, row)
