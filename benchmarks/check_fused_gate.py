#!/usr/bin/env python
"""CI regression gate for the fused codec + batched streaming.

Reads ``BENCH_fused.json`` (written when the benchmark suite runs
``benchmarks/test_ext_fused_codec.py``) and fails unless the
acceptance thresholds hold:

* fused encode >= ``ENCODE_MIN``x the per-field baseline on every
  gate shape (the scalar-run Fig. 7 records);
* batched message rate >= ``BATCH_MIN``x the per-record DATA path.

Usage::

    python benchmarks/check_fused_gate.py [path/to/BENCH_fused.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ENCODE_MIN = 1.5
BATCH_MIN = 3.0


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[1] / "BENCH_fused.json"
    if not path.exists():
        print(f"gate: {path} missing — run the benchmark suite first "
              "(PYTHONPATH=src python -m pytest "
              "benchmarks/test_ext_fused_codec.py)")
        return 2
    data = json.loads(path.read_text())

    failures: list[str] = []
    for shape, m in sorted(data.get("encode", {}).items()):
        line = (f"encode {shape:12s} fused {m['fused_us']:7.2f}us  "
                f"baseline {m['per_field_us']:7.2f}us  "
                f"{m['speedup']:.2f}x" +
                ("" if m.get("gate") else "  (not gated)"))
        print(line)
        if m.get("gate") and m["speedup"] < ENCODE_MIN:
            failures.append(
                f"encode speedup on {shape} is {m['speedup']:.2f}x, "
                f"below the {ENCODE_MIN}x gate")
    for shape, m in sorted(data.get("decode", {}).items()):
        print(f"decode {shape:12s} fused {m['fused_us']:7.2f}us  "
              f"baseline {m['per_field_us']:7.2f}us  "
              f"{m['speedup']:.2f}x")

    batch = data.get("batch_message_rate")
    if batch is None:
        failures.append("batch_message_rate missing from metrics")
    else:
        print(f"batch  {batch['records']} records: "
              f"{batch['per_record_rps']:,.0f} -> "
              f"{batch['batched_rps']:,.0f} rec/s  "
              f"{batch['speedup']:.2f}x")
        if batch["speedup"] < BATCH_MIN:
            failures.append(
                f"batched message rate is {batch['speedup']:.2f}x, "
                f"below the {BATCH_MIN}x gate")

    if failures:
        print("\nGATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
