"""Extension — telemetry overhead on the codec hot path.

The observability tentpole promises that instrumentation never taxes
the marshaling fast path.  Three encode paths are timed per shape:

* ``raw``:  ``RecordEncoder.encode_wire`` directly — no context, no
  telemetry hooks at all (the floor);
* ``noop``: ``IOContext.encode`` with telemetry disabled, so every
  hook collapses to a module-attribute check;
* ``enabled``: ``IOContext.encode`` with telemetry on at the default
  1-in-16 sample mask (production configuration).

A fourth number, ``hook_ns``, is the per-call cost of the disabled
``sample_t0`` hook itself — the unit of no-op overhead.

The measured ratios land in ``BENCH_obs.json`` (written by
``conftest.pytest_sessionfinish``); ``benchmarks/check_obs_gate.py``
enforces the acceptance thresholds (enabled <= 1.05x no-op, hook
<= 1% of a no-op encode) on the gated shapes — records large enough
that a constant per-call hook cost must disappear into the per-record
work.  Small scalar shapes are measured but not gated; a ~100ns hook
is a visible fraction of a 2us encode and the paper's answer there is
the batch API, not thinner hooks.  In-test assertions use looser
margins so machine noise cannot flake the suite.
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.bench.timing import time_callable
from repro.hydrology.formats import GAUGE_COUNT, hydrology_field_specs
from repro.obs import runtime as _obs
from repro.obs.spans import sample_t0
from repro.pbio.context import IOContext
from repro.pbio.encode import RecordEncoder
from repro.pbio.format_server import FormatServer

_SPECS = hydrology_field_specs()

#: ``gate`` marks the shapes the 1.05x enabled-over-noop threshold
#: applies to (var-array records where per-record work dominates any
#: constant hook cost).  ``spec_name`` picks the layout; shapes may
#: share one (SimpleData at two array sizes).
CASES = {
    "FlowParams": {
        "gate": False,
        "spec_name": "FlowParams",
        "record": dict(timestep=3, nx=64, ny=64, dx=30.0, dy=30.0,
                       dt=1.5, viscosity=0.125, rainfall=0.0625,
                       iterations=100, flags=0, elapsed=12.5),
    },
    "GridMeta": {
        "gate": False,
        "spec_name": "GridMeta",
        "record": dict(timestep=3, nx=64, ny=64, west=0.0,
                       east=1920.0, south=0.0, north=1920.0,
                       cell_size=30.0, no_data=-9999.0, min_depth=0.0,
                       max_depth=2.5, mean_depth=0.25,
                       total_volume=1234.5, gauge_count=GAUGE_COUNT,
                       gauges=[i / 4 for i in range(GAUGE_COUNT)]),
    },
    "SimpleData-1k": {
        "gate": True,
        "spec_name": "SimpleData",
        "record": dict(timestep=1, size=1024,
                       data=[i / 8 for i in range(1024)]),
    },
    "SimpleData-4k": {
        "gate": True,
        "spec_name": "SimpleData",
        "record": dict(timestep=1, size=4096,
                       data=[i / 8 for i in range(4096)]),
    },
}


def _context_for(label):
    ctx = IOContext(format_server=FormatServer())
    name = CASES[label]["spec_name"]
    fmt = ctx.register_layout(name, _SPECS[name])
    return ctx, fmt


@pytest.fixture(autouse=True)
def _telemetry_defaults():
    """Benchmarks toggle the global switch; always restore it."""
    enabled, mask = _obs.enabled, _obs.sample_mask
    yield
    _obs.enabled = enabled
    _obs.sample_mask = mask


@pytest.mark.parametrize("label", list(CASES))
@pytest.mark.parametrize("path", ["raw", "noop", "enabled"])
@pytest.mark.benchmark(group="ext-obs-overhead")
def test_encode_overhead(label, path, benchmark):
    ctx, fmt = _context_for(label)
    record = CASES[label]["record"]
    name = CASES[label]["spec_name"]
    if path == "raw":
        encoder = RecordEncoder(fmt)
        benchmark(lambda: encoder.encode_wire(record))
        return
    obs.set_enabled(path == "enabled")
    benchmark(lambda: ctx.encode(name, record))


def test_obs_overhead_recorded(obs_metrics):
    """Measure the raw/noop/enabled encode cost on every shape and
    the bare hook cost; record them for the CI gate and assert
    conservative floors here."""
    shapes = {}
    for label, case in CASES.items():
        ctx, fmt = _context_for(label)
        name = case["spec_name"]
        record = case["record"]
        encoder = RecordEncoder(fmt)
        assert bytes(encoder.encode_wire(record)) == \
            bytes(ctx.encode(name, record))

        raw = time_callable(
            lambda: encoder.encode_wire(record), repeat=7).best
        obs.set_enabled(False)
        noop = time_callable(
            lambda: ctx.encode(name, record), repeat=7).best
        obs.set_enabled(True)
        obs.configure(sample_mask=15)
        enabled = time_callable(
            lambda: ctx.encode(name, record), repeat=7).best

        shapes[label] = {
            "raw_us": raw * 1e6,
            "noop_us": noop * 1e6,
            "enabled_us": enabled * 1e6,
            "enabled_over_noop": enabled / noop,
            "noop_over_raw": noop / raw,
            "gate": case["gate"],
        }
        if case["gate"]:
            # loose floor; check_obs_gate.py enforces the real 1.05x
            assert enabled / noop < 1.25, (label, shapes[label])

    obs.set_enabled(False)
    hook_ns = time_callable(sample_t0, repeat=7).best * 1e9
    obs.set_enabled(True)

    obs_metrics["encode"] = shapes
    obs_metrics["hook_ns"] = hook_ns
    # the disabled hook is sub-microsecond no matter the machine
    assert hook_ns < 1_000
