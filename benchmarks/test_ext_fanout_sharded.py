"""Extension experiment — sharded broadcast past one event loop.

``test_ext_fanout`` shows encode-once amortizing marshaling across
subscribers inside a single event-loop process.  This sweep measures
what the sharded layer adds: the same encode-once frame fanned out to
N subscribers spread over 1, 2 and 4 *worker processes*
(:class:`~repro.transport.sharded.ShardedBroadcastServer`, fdpass
distribution for a deterministic round-robin split).

Two claims, both recorded in ``BENCH_fanout_sharded.json`` and
enforced by ``benchmarks/check_sharded_gate.py``:

* **encode-once survives sharding** — the publisher marshals each
  record exactly once no matter how many workers fan it out (codec and
  bulk-path counters, not timings, prove it: workers encode zero
  records, the publisher spills each grid once);
* **shards buy wall-clock on real cores** — with enough CPUs the
  drain parallelism shows up as speedup (>= 1.6x at 2 workers, 2.5x
  at 4); on starved runners the gate degrades to a no-regression
  floor, keyed off the recorded ``cpus`` field.

In-test assertions cover only the machine-independent counter shape,
so a 1-CPU container cannot flake the suite.
"""

from __future__ import annotations

import array
import os
import socket
import time

import pytest

from benchmarks.test_ext_fanout import _Drainer
from repro.pbio.context import IOContext
from repro.pbio.encode import BULK_STATS
from repro.pbio.format_server import FormatServer
from repro.transport.sharded import ShardedBroadcastServer

FANOUT = (256, 1024, 4096)
WORKER_COUNTS = (1, 2, 4)
#: messages per timed round, sized down as the fleet grows so the
#: whole matrix fits a CI slot; per-client costs normalize this out
MESSAGES = {256: 40, 1024: 16, 4096: 8}
GRID_FLOATS = 1024  # 8 KiB payload: well past SPILL_MIN_BYTES

SPECS = [("timestep", "integer"), ("size", "integer"),
         ("data", "float[size]", 8)]
# float64 array payload matching the 8-byte field: the bulk fast path
# spills it as a zero-copy segment instead of copying per element
RECORD = {"timestep": 7,
          "data": array.array("d", range(GRID_FLOATS))}

pytestmark = pytest.mark.timeout(600)


def _context() -> IOContext:
    ctx = IOContext(format_server=FormatServer())
    ctx.register_layout("GridSlab", SPECS)
    return ctx


def _measure(clients: int, workers: int) -> dict:
    messages = MESSAGES[clients]
    srv = ShardedBroadcastServer(
        _context(), workers=workers, mode="fdpass", policy="block",
        max_queue_bytes=32 * 1024 * 1024, start_timeout=300.0)
    srv.start()
    # one drainer thread per shard (fdpass round-robins socket i to
    # worker i % workers), so the receive side scales with the fleet
    # and a single reader thread cannot cap the measured speedup
    drainers = [_Drainer() for _ in range(workers)]
    socks = []
    try:
        for i in range(clients):
            sock = socket.create_connection((srv.host, srv.port))
            socks.append(sock)
            drainers[i % workers].watch(sock)
        for drainer in drainers:
            drainer.start()
        assert srv.wait_for_subscribers(clients, timeout=300)

        # warm round: spawn caches, compiled plans, TCP stacks
        for _ in range(2):
            srv.publish("GridSlab", RECORD)
        assert srv.flush(timeout=300)

        codec_before = srv.context.stats.as_dict()["records_encoded"]
        bulk_before = BULK_STATS.snapshot()
        start = time.perf_counter()
        for _ in range(messages):
            srv.publish("GridSlab", RECORD)
        assert srv.flush(timeout=300)
        elapsed = time.perf_counter() - start

        encoded = srv.context.stats.as_dict()["records_encoded"] \
            - codec_before
        bulk_after = BULK_STATS.snapshot()
        spilled = bulk_after["spilled_segments"] \
            - bulk_before["spilled_segments"]
        shard_stats = srv.worker_stats(timeout=120)
        worker_encoded = sum(s["codec"]["records_encoded"]
                             for s in shard_stats.values())
        worker_bulk = sum(sum(s["bulk"].values())
                          for s in shard_stats.values())
        dropped = srv.stats.frames_dropped + sum(
            s["publisher"]["frames_dropped"]
            for s in shard_stats.values())
    finally:
        srv.close()
        for drainer in drainers:
            drainer.close()
        for sock in socks:
            sock.close()
    return {
        "clients": clients,
        "workers": workers,
        "messages": messages,
        "total_s": elapsed,
        "per_message_us": elapsed / messages * 1e6,
        "per_client_us": elapsed / (messages * clients) * 1e6,
        "parent_records_encoded": encoded,
        "parent_spilled_segments": spilled,
        "worker_records_encoded": worker_encoded,
        "worker_bulk_ops": worker_bulk,
        "frames_dropped": dropped,
    }


@pytest.mark.parametrize("clients", FANOUT)
def test_sharded_fanout_sweep_recorded(clients, sharded_metrics):
    """One fleet size across the worker-count axis; records rows for
    the CI gate and asserts the encode-once counter shape."""
    sharded_metrics.setdefault("cpus", os.cpu_count() or 1)
    sharded_metrics.setdefault("mode", "fdpass")
    matrix = sharded_metrics.setdefault("matrix", {})
    rows = matrix.setdefault(str(clients), {})
    for workers in WORKER_COUNTS:
        row = _measure(clients, workers)
        rows[str(workers)] = row
        # machine-independent acceptance: marshal once, fan out many
        assert row["parent_records_encoded"] == row["messages"], row
        assert row["parent_spilled_segments"] >= row["messages"], row
        assert row["worker_records_encoded"] == 0, \
            "a shard re-encoded a record"
        assert row["worker_bulk_ops"] == 0, \
            "a shard touched the bulk codec"
        assert row["frames_dropped"] == 0, row


@pytest.mark.benchmark(group="ext-fanout-sharded")
def test_ext_sharded_two_workers(benchmark):
    """pytest-benchmark row: 256 subscribers across two shards."""
    benchmark.pedantic(lambda: _measure(256, 2), rounds=1,
                       iterations=1)
