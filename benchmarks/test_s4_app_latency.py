"""Section 4 — application-level message latency, XML vs XMIT/PBIO.

The paper's application experiment: "XML messages are 3 times larger
than the corresponding binary messages ... resulting in the XML-based
solutions experiencing twice the latency than the solutions using
XMIT."  End-to-end latency is modeled as

    latency = encode + bytes * byte_time + decode

over a range of link speeds (the paper's testbed was ~100 Mbit
Ethernet).  On a fast link, processing dominates and the binary
advantage is enormous; on a slow link, the size ratio bounds the
latency ratio — both regimes are checked.
"""

import pytest

from repro.bench import workloads
from repro.bench.timing import time_callable
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.wire import PBIOWireCodec, XMLWireCodec

#: seconds per byte: 100 Mbit/s and 10 Mbit/s links.
LINKS = {"100mbit": 8 / 100e6, "10mbit": 8 / 10e6}


def _setup():
    fmt = IOFormat("SimpleData", field_list_for(
        [("timestep", "integer", 4), ("size", "integer", 4),
         ("data", "float[size]", 4)]))
    record = workloads.simple_data_record(workloads.FIG1_FLOATS)
    return XMLWireCodec(fmt), PBIOWireCodec(fmt), record


def _latency(codec, record, byte_time: float) -> float:
    encode = time_callable(lambda: codec.encode(record), repeat=2,
                           target_batch_seconds=0.01).best
    data = codec.encode(record)
    decode = time_callable(lambda: codec.decode(data), repeat=2,
                           target_batch_seconds=0.01).best
    return encode + len(data) * byte_time + decode


@pytest.mark.parametrize("link", list(LINKS))
def test_s4_latency_xml(link, benchmark):
    benchmark.group = f"s4-latency-{link}"
    xml, _, record = _setup()
    data = xml.encode(record)
    benchmark.pedantic(lambda: xml.decode(xml.encode(record)),
                       rounds=3, iterations=1)
    assert len(data) > 3 * (8 + 4 * record["size"])


@pytest.mark.parametrize("link", list(LINKS))
def test_s4_latency_binary(link, benchmark):
    benchmark.group = f"s4-latency-{link}"
    _, pbio, record = _setup()
    benchmark(lambda: pbio.decode(pbio.encode(record)))


@pytest.mark.benchmark(group="s4-latency-model")
def test_s4_latency_ratio(benchmark):
    def sweep():
        xml, pbio, record = _setup()
        out = {}
        for link, byte_time in LINKS.items():
            out[link] = (_latency(xml, record, byte_time),
                         _latency(pbio, record, byte_time))
        sizes = (len(xml.encode(record)), len(pbio.encode(record)))
        return out, sizes

    latencies, (xml_size, bin_size) = benchmark.pedantic(
        sweep, rounds=1, iterations=1)
    # the paper's 3x size ratio
    assert xml_size / bin_size > 3.0
    for link, (xml_lat, bin_lat) in latencies.items():
        # XML at least 2x slower end to end on every link (the paper
        # measured exactly 2x on its C substrate; Python XML parsing
        # pushes ours higher)
        assert xml_lat / bin_lat > 2.0, (link, xml_lat, bin_lat)
