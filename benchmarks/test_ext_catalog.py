"""Extension — catalog scale (lazy compile) and warm-start latency.

Two claims behind this PR, measured together and flushed to
``BENCH_catalog.json`` for ``benchmarks/check_catalog_gate.py``:

* **Lazy schema compile**: loading a 10k-complexType catalog
  (``REPRO_CATALOG_FORMATS`` overrides the size) with ``lazy=True``
  defers every per-type IR compile to first binding.  The gate is
  counter-based — 10k deferrals, at most a couple of lazy compiles
  after one bind — plus the latency claim that binding one format
  costs well under 1% of eagerly compiling the whole catalog.
* **Warm start**: a process restarting over a populated
  ``REPRO_PLAN_CACHE_DIR`` reaches its first encoded message by
  reading plans off disk instead of re-walking discover → parse →
  compile → bind.  Cold and warm first-message latency are measured
  over several rounds (medians), and span accounting shows the warm
  path's registration phases are empty (RDM ≈ 0, zero ``compile``/
  ``compile_plan`` spans).
"""

from __future__ import annotations

import os
import statistics
import time

import pytest

from repro import obs
from repro.core.schema_compiler import compile_schema
from repro.core.toolkit import XMIT
from repro.obs.spans import rdm_from_snapshot
from repro.pbio.context import IOContext
from repro.pbio.decode import clear_decoder_cache, decoder_for_format
from repro.pbio.encode import clear_encoder_cache
from repro.pbio.format_server import FormatServer
from repro.pbio.plancache import (
    configure_plan_cache, reset_plan_cache_configuration, warm_start,
)
from repro.schema.parser import parse_schema
from repro.xmlcore.parser import parse

N_FORMATS = int(os.environ.get("REPRO_CATALOG_FORMATS", "10000"))
N_FIELDS = 96
ROUNDS = 7


def catalog_xsd(n: int) -> str:
    parts = ['<xsd:schema '
             'xmlns:xsd="http://www.w3.org/2001/XMLSchema">']
    for i in range(n):
        parts.append(f'''  <xsd:complexType name="Fmt{i:05d}">
    <xsd:element name="step" type="xsd:int" />
    <xsd:element name="value" type="xsd:double" />
    <xsd:element name="flag" type="xsd:unsignedByte" />
  </xsd:complexType>''')
    parts.append('</xsd:schema>')
    return "\n".join(parts)


def wide_xsd(n_fields: int) -> str:
    types = ["int", "double", "unsignedInt"]
    elems = "\n".join(
        f'    <xsd:element name="f{i:02d}" '
        f'type="xsd:{types[i % 3]}" />' for i in range(n_fields))
    return (f'<xsd:schema '
            f'xmlns:xsd="http://www.w3.org/2001/XMLSchema">\n'
            f'  <xsd:complexType name="Wide">\n{elems}\n'
            f'  </xsd:complexType>\n</xsd:schema>')


@pytest.mark.benchmark(group="ext-catalog")
def test_ext_catalog_lazy_compile(benchmark, catalog_metrics):
    doc = catalog_xsd(N_FORMATS)

    def sweep():
        t0 = time.perf_counter()
        lazy = XMIT(lazy=True)
        lazy.load_text(doc)
        lazy_load_s = time.perf_counter() - t0

        t0 = time.perf_counter()
        lazy.bind(f"Fmt{N_FORMATS // 2:05d}", target="pbio")
        first_bind_us = (time.perf_counter() - t0) * 1e6
        stats = lazy.discovery_stats.snapshot()

        t0 = time.perf_counter()
        eager = XMIT()
        eager.load_text(doc)
        eager_load_s = time.perf_counter() - t0

        # compile work in isolation (shared parse removed): what the
        # lazy path defers entirely
        schema = parse_schema(parse(doc))
        t0 = time.perf_counter()
        compile_schema(schema)
        eager_compile_s = time.perf_counter() - t0

        return (lazy_load_s, eager_load_s, eager_compile_s,
                first_bind_us, stats)

    lazy_load_s, eager_load_s, eager_compile_s, first_bind_us, \
        stats = benchmark.pedantic(sweep, rounds=1, iterations=1)

    catalog_metrics["catalog"] = {
        "formats": N_FORMATS,
        "lazy_load_s": round(lazy_load_s, 3),
        "eager_load_s": round(eager_load_s, 3),
        "eager_compile_s": round(eager_compile_s, 3),
        "first_bind_us": round(first_bind_us, 1),
        "deferred_formats": stats["deferred_formats"],
        "lazy_compiles_after_bind": stats["lazy_compiles"],
        "lazy_document_compiles": stats["compiles"],
    }
    benchmark.extra_info.update(catalog_metrics["catalog"])

    assert stats["deferred_formats"] == N_FORMATS
    assert stats["compiles"] == 0
    assert 1 <= stats["lazy_compiles"] <= 3
    # binding one format must cost a vanishing fraction of compiling
    # the catalog (the point of deferring)
    assert first_bind_us < eager_compile_s * 1e6 / 50


@pytest.mark.benchmark(group="ext-catalog")
def test_ext_warm_start_first_message(benchmark, catalog_metrics,
                                      tmp_path):
    xsd = wide_xsd(N_FIELDS)
    record = {f"f{i:02d}": (1 if i % 3 != 1 else 0.5)
              for i in range(N_FIELDS)}

    def cold_first_message():
        t0 = time.perf_counter()
        xmit = XMIT()
        xmit.load_text(xsd)
        ctx = IOContext(format_server=FormatServer())
        fmt = xmit.register_with_context(ctx, "Wide")
        ctx.encode(fmt, record)
        return (time.perf_counter() - t0) * 1e6, fmt, ctx

    def warm_first_message():
        t0 = time.perf_counter()
        ctx = IOContext(format_server=FormatServer())
        restored = warm_start(context=ctx)
        (fid,) = ctx.format_server.known_ids()
        fmt = ctx.format_server.lookup(fid)
        ctx.encode(fmt, record)
        return (time.perf_counter() - t0) * 1e6, restored, fmt, ctx

    def sweep():
        import repro.pbio.plancache as plancache
        configure_plan_cache(tmp_path / "plans")
        colds, warms = [], []
        try:
            for _ in range(ROUNDS):
                clear_encoder_cache()
                clear_decoder_cache()
                plancache._format_memo.clear()
                cold_us, fmt, _ = cold_first_message()
                decoder_for_format(fmt)  # persist the decode plan too
                colds.append(cold_us)

                # "restart": drop every in-memory artifact, keep disk
                clear_encoder_cache(persistent=False)
                clear_decoder_cache(persistent=False)
                plancache._format_memo.clear()
                warm_us, restored, _, _ = warm_first_message()
                assert restored == 1
                warms.append(warm_us)

            # span accounting for one warm start: registration-phase
            # time must be absent entirely
            obs.configure(sample_mask=0)
            clear_encoder_cache(persistent=False)
            clear_decoder_cache(persistent=False)
            obs.reset()
            _, _, fmt, ctx = warm_first_message()
            for _ in range(256):
                ctx.encode(fmt, record)
            snap = obs.snapshot()
        finally:
            clear_encoder_cache()
            clear_decoder_cache()
            reset_plan_cache_configuration()
        return colds, warms, snap

    colds, warms, snap = benchmark.pedantic(sweep, rounds=1,
                                            iterations=1)

    spans = snap.get("repro_spans_total", {"series": []})["series"]
    compile_spans = sum(
        s["value"] for s in spans
        if s["labels"].get("name") in ("compile_plan", "compile",
                                       "fetch", "bind"))
    plan_loads = sum(s["value"] for s in spans
                     if s["labels"].get("name") == "plan_cache_load")
    disk = snap.get("repro_plan_cache_total", {"series": []})["series"]
    disk_hits = sum(s["value"] for s in disk
                    if s["labels"].get("tier") == "disk"
                    and s["labels"].get("outcome") == "hit")
    reading = rdm_from_snapshot(snap)
    warm_rdm = reading["rdm"] if reading["rdm"] is not None else 0.0

    cold_us = statistics.median(colds)
    warm_us = statistics.median(warms)
    catalog_metrics["warm_start"] = {
        "fields": N_FIELDS,
        "rounds": ROUNDS,
        "cold_first_message_us": round(cold_us, 1),
        "warm_first_message_us": round(warm_us, 1),
        "cold_warm_ratio": round(cold_us / warm_us, 3),
        "warm_rdm": round(warm_rdm, 4),
        "warm_compile_spans": compile_spans,
        "warm_plan_load_spans": plan_loads,
        "warm_disk_hits": disk_hits,
    }
    benchmark.extra_info.update(catalog_metrics["warm_start"])

    assert compile_spans == 0
    assert plan_loads >= 2 and disk_hits >= 2
    assert warm_rdm <= 1.2
    assert warm_us < cold_us
