"""Extension — zero-copy bulk-array fast path in the fused codec.

Measures what the bulk tentpole bought on fixed-stride numeric
payloads, the dominant traffic of the paper's grid pipelines:

* encode: a typed array moving as one ``memoryview`` slice into the
  pooled body, vs the per-element baseline (``bulk=False``) fed the
  same payload as a Python list — what every pre-bulk pipeline stage
  paid when it re-encoded a decoded record;
* decode-to-numpy: ``arrays="view"`` handing back a read-only view
  over the receive buffer, vs list decode plus the ``np.asarray``
  the hydrology components perform on arrival;
* fan-out: a ~1 MB grid through ``encode_wire_parts``, where the
  ``BULK_STATS`` counters *prove* the payload spilled as one
  zero-copy segment (copied exactly once, by the frame join) rather
  than inferring it from timings.

The measured ratios land in ``BENCH_bulk.json`` (written by
``conftest.pytest_sessionfinish``); ``benchmarks/check_bulk_gate.py``
enforces the acceptance thresholds (>=3x encode and decode on every
size, single-copy counters on the fan-out row) as a separate CI
step.  In-test assertions use looser margins so machine noise cannot
flake the tier-1 suite.
"""

import numpy as np
import pytest

from repro.bench.timing import time_callable
from repro.pbio.context import IOContext
from repro.pbio.decode import RecordDecoder
from repro.pbio.encode import BULK_STATS, RecordEncoder
from repro.pbio.format_server import FormatServer

#: Grid-payload sweep: 8 KiB to 800 KiB of float64 samples.
SIZES = (1024, 10240, 102400)

#: Large enough to clear SPILL_MIN_BYTES by a wide margin: 1 MiB.
FANOUT_ELEMENTS = 131072

_SPECS = [("n", "integer", 4), ("data", "float[n]", 8)]


def _format():
    ctx = IOContext(format_server=FormatServer())
    return ctx.register_layout("BulkGrid", _SPECS)


def _payload(n):
    rng = np.random.default_rng(7)
    return rng.random(n)


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("path", ["bulk", "per-element"])
@pytest.mark.benchmark(group="ext-bulk-encode")
def test_encode_latency(size, path, benchmark):
    fmt = _format()
    data = _payload(size)
    if path == "bulk":
        encoder = RecordEncoder(fmt)
        record = {"n": size, "data": data}
    else:
        encoder = RecordEncoder(fmt, bulk=False)
        record = {"n": size, "data": data.tolist()}
    benchmark(lambda: encoder.encode_wire(record))


@pytest.mark.parametrize("size", SIZES)
@pytest.mark.parametrize("path", ["view", "list+asarray"])
@pytest.mark.benchmark(group="ext-bulk-decode")
def test_decode_latency(size, path, benchmark):
    fmt = _format()
    body = RecordEncoder(fmt).encode_body(
        {"n": size, "data": _payload(size)})
    body = bytes(body)
    if path == "view":
        decoder = RecordDecoder(fmt, arrays="view")
        benchmark(lambda: decoder.decode(body))
    else:
        decoder = RecordDecoder(fmt)
        benchmark(lambda: np.asarray(decoder.decode(body)["data"]))


def test_bulk_speedup_recorded(bulk_metrics):
    """Measure bulk-vs-baseline ratios on every size and record them
    for the CI gate; assert a conservative floor here."""
    encode_out, decode_out = {}, {}
    for size in SIZES:
        fmt = _format()
        data = _payload(size)
        bulk_e = RecordEncoder(fmt)
        plain_e = RecordEncoder(fmt, bulk=False)
        bulk_record = {"n": size, "data": data}
        list_record = {"n": size, "data": data.tolist()}
        wire = bulk_e.encode_wire(bulk_record)
        assert wire == plain_e.encode_wire(list_record)
        body = wire[16:]
        view_d = RecordDecoder(fmt, arrays="view")
        list_d = RecordDecoder(fmt)

        te_bulk = time_callable(
            lambda: bulk_e.encode_wire(bulk_record), repeat=7).best
        te_plain = time_callable(
            lambda: plain_e.encode_wire(list_record), repeat=7).best
        td_view = time_callable(
            lambda: view_d.decode(body), repeat=7).best
        td_list = time_callable(
            lambda: np.asarray(list_d.decode(body)["data"]),
            repeat=7).best

        key = str(size)
        encode_out[key] = {
            "elements": size,
            "bulk_us": te_bulk * 1e6,
            "per_element_us": te_plain * 1e6,
            "speedup": te_plain / te_bulk,
            "gate": True,
        }
        decode_out[key] = {
            "elements": size,
            "view_us": td_view * 1e6,
            "list_asarray_us": td_list * 1e6,
            "speedup": td_list / td_view,
            "gate": True,
        }
        # loose floors; check_bulk_gate.py enforces the real 3x
        assert te_plain / te_bulk > 2.0, (size, encode_out[key])
        assert td_list / td_view > 2.0, (size, decode_out[key])
    bulk_metrics["encode"] = encode_out
    bulk_metrics["decode"] = decode_out


def test_fanout_single_copy_recorded(bulk_metrics):
    """A ~1 MB grid through ``encode_wire_parts``: the counters must
    show one zero-copy spill segment and zero payload copies — the
    only copy of the grid is the transport's single frame join."""
    fmt = _format()
    data = _payload(FANOUT_ELEMENTS)
    encoder = RecordEncoder(fmt)
    plain = RecordEncoder(fmt, bulk=False)
    record = {"n": FANOUT_ELEMENTS, "data": data}
    list_record = {"n": FANOUT_ELEMENTS, "data": data.tolist()}

    before = BULK_STATS.snapshot()
    parts = encoder.encode_wire_parts(record)
    delta = {k: v - before[k]
             for k, v in BULK_STATS.snapshot().items()}
    frame = b"".join(parts)
    assert frame == plain.encode_wire(list_record)
    assert delta["spilled_segments"] == 1, delta
    assert delta["copied_arrays"] == 0, delta
    assert delta["copied_bytes"] == 0, delta
    assert delta["zero_copy_views"] == 1, delta
    assert delta["fallback_arrays"] == 0, delta

    t_parts = time_callable(
        lambda: b"".join(encoder.encode_wire_parts(record)),
        repeat=7).best
    t_plain = time_callable(
        lambda: plain.encode_wire(list_record), repeat=7).best

    bulk_metrics["fanout_single_copy"] = {
        "elements": FANOUT_ELEMENTS,
        "payload_bytes": data.nbytes,
        "parts_join_us": t_parts * 1e6,
        "per_element_us": t_plain * 1e6,
        "speedup": t_plain / t_parts,
        "spilled_segments": delta["spilled_segments"],
        "zero_copy_views": delta["zero_copy_views"],
        "copied_arrays": delta["copied_arrays"],
        "copied_bytes": delta["copied_bytes"],
    }
    # loose floor; check_bulk_gate.py enforces the real 3x
    assert t_plain / t_parts > 2.0, bulk_metrics["fanout_single_copy"]
