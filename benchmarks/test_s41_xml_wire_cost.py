"""Section 4.1 — "XML is inappropriate as a wire format".

The paper: "encoding/decoding times are between 2 and 4 orders of
magnitude greater than binary mechanisms", and the ASCII expansion
runs 6-8x for typical records.  This bench measures the *round trip*
(encode + decode, both ends of a connection pay) for XML vs PBIO.
"""

import pytest

from repro.bench import workloads
from repro.bench.timing import time_callable
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.wire import PBIOWireCodec, XMLWireCodec

SIZES = (1_000, 10_000, 100_000)


def _codecs():
    fmt = IOFormat("SimpleData", field_list_for(
        [("timestep", "integer", 4), ("size", "integer", 4),
         ("data", "float[size]", 4)]))
    return XMLWireCodec(fmt), PBIOWireCodec(fmt)


@pytest.mark.parametrize("size", SIZES)
def test_s41_xml_roundtrip(size, benchmark):
    benchmark.group = f"s41-roundtrip-{size}b"
    xml, _ = _codecs()
    record = workloads.simple_data_record_for_bytes(size)
    data = xml.encode(record)
    benchmark.pedantic(lambda: xml.decode(xml.encode(record)),
                       rounds=3, iterations=1)
    assert len(data) > size  # ASCII expansion


@pytest.mark.parametrize("size", SIZES)
def test_s41_binary_roundtrip(size, benchmark):
    benchmark.group = f"s41-roundtrip-{size}b"
    _, pbio = _codecs()
    record = workloads.simple_data_record_for_bytes(size)
    benchmark(lambda: pbio.decode(pbio.encode(record)))


@pytest.mark.benchmark(group="s41-magnitude")
def test_s41_orders_of_magnitude(benchmark):
    def sweep():
        xml, pbio = _codecs()
        ratios = {}
        for size in SIZES:
            record = workloads.simple_data_record_for_bytes(size)
            xml_cost = time_callable(
                lambda: xml.decode(xml.encode(record)), repeat=2,
                target_batch_seconds=0.01).best
            bin_cost = time_callable(
                lambda: pbio.decode(pbio.encode(record)),
                repeat=3).best
            ratios[size] = xml_cost / bin_cost
        return ratios

    ratios = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # two orders of magnitude at every measured size
    assert all(ratio > 50 for ratio in ratios.values()), ratios
    assert max(ratios.values()) > 100, ratios
