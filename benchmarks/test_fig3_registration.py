"""Fig. 3 — format registration cost, PBIO vs XMIT (proof of concept).

The paper registers three structures (32/52/180 bytes ILP32, the
largest built by composing sub-structures) through both paths and
reports the Remote Discovery Multiplier staying roughly constant
(1.87 - 2.05 on its C substrate).  Here each (structure, path) pair is
one benchmark; the RDM is the ratio of the two group rows, asserted to
stay a small constant.
"""

import pytest

from repro.bench import workloads
from repro.bench.rdm import build_subformats, pbio_register, xmit_register
from repro.pbio.machine import NATIVE

CASES = {case["name"]: case for case in workloads.poc_cases()}
NAMES = list(CASES)


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.benchmark(group="fig3-registration")
def test_fig3_pbio_registration(name, benchmark):
    case = CASES[name]
    subformats = (build_subformats(case["subformats"])
                  if case.get("subformats") else None)
    ctx = benchmark(pbio_register, case["specs"], name, NATIVE,
                    subformats)
    assert name in ctx.format_names


@pytest.mark.parametrize("name", NAMES)
@pytest.mark.benchmark(group="fig3-registration")
def test_fig3_xmit_registration(name, benchmark):
    case = CASES[name]
    ctx = benchmark(xmit_register, case["xsd"], name)
    assert name in ctx.format_names


@pytest.mark.benchmark(group="fig3-rdm")
def test_fig3_rdm_is_small_constant(benchmark):
    """The figure's headline: RDM roughly flat as structure size
    grows.  Run the whole sweep once inside the benchmark and assert
    the shape."""
    from repro.bench.rdm import measure_rdm_suite

    def sweep():
        return measure_rdm_suite(workloads.poc_cases(), repeat=3)

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rdms = [r.rdm for r in results]
    assert all(1.0 < rdm < 25.0 for rdm in rdms), rdms
    # "relatively constant even as the structure size increases":
    # bounded spread across a 5x size range
    assert max(rdms) / min(rdms) < 6.0, rdms
