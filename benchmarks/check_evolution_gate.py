#!/usr/bin/env python
"""CI regression gate for sender-side down-conversion.

Reads ``BENCH_evolution.json`` (written when the benchmark suite runs
``benchmarks/test_abl_evolution_cost.py``) and fails unless the
publisher's record-path down-conversion stays within
``DOWN_CONVERT_MAX``x of a native old-version decode on every shape —
the bound that keeps serving one stale cohort comparable to serving
one extra native subscriber.  The relay (wire) path re-decodes the new
frame first, so it gets the looser ``RELAY_MAX``x.

Usage::

    python benchmarks/check_evolution_gate.py \
        [path/to/BENCH_evolution.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

DOWN_CONVERT_MAX = 2.0
RELAY_MAX = 5.0


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[1] / "BENCH_evolution.json"
    if not path.exists():
        print(f"gate: {path} missing — run the benchmark suite first "
              "(PYTHONPATH=src python -m pytest "
              "benchmarks/test_abl_evolution_cost.py)")
        return 2
    data = json.loads(path.read_text())

    failures: list[str] = []
    shapes = data.get("sender", {})
    if not shapes:
        failures.append("no sender shapes recorded")
    for shape, m in sorted(shapes.items()):
        down = m["down_convert_over_native_decode"]
        relay = m["relay_convert_over_native_decode"]
        print(f"sender {shape:10s}  "
              f"native {m['native_decode_us']:7.2f}us  "
              f"down-convert {m['down_convert_us']:7.2f}us "
              f"({down:.3f}x)  "
              f"relay {m['relay_convert_us']:7.2f}us ({relay:.3f}x)")
        if down > DOWN_CONVERT_MAX:
            failures.append(
                f"record-path down-conversion on {shape} is "
                f"{down:.3f}x a native decode, above the "
                f"{DOWN_CONVERT_MAX}x gate")
        if relay > RELAY_MAX:
            failures.append(
                f"relay down-conversion on {shape} is {relay:.3f}x a "
                f"native decode, above the {RELAY_MAX}x gate")

    if failures:
        print("\nGATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
