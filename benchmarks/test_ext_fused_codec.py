"""Extension — fused codec plans and batched record streaming.

Measures what the marshaling tentpole bought:

* per-record encode/decode latency of the fused fast path vs the
  per-field baseline (``fuse=False``), on Fig. 7 record shapes;
* end-to-end message rate over loopback TCP, per-record DATA frames
  vs one shared-header DATA_BATCH.

The measured ratios land in ``BENCH_fused.json`` (written by
``conftest.pytest_sessionfinish``); ``benchmarks/check_fused_gate.py``
enforces the acceptance thresholds (>=1.5x encode on fused-run
shapes, >=3x batched message rate) as a separate CI step.  In-test
assertions use looser margins so machine noise cannot flake the
tier-1 suite.
"""

import pytest

from repro.bench.timing import time_callable
from repro.hydrology.formats import GAUGE_COUNT, hydrology_field_specs
from repro.pbio.context import IOContext
from repro.pbio.decode import RecordDecoder
from repro.pbio.encode import RecordEncoder
from repro.pbio.format_server import FormatServer
from repro.transport.connection import Connection
from repro.transport.tcp import tcp_pair

_SPECS = hydrology_field_specs()

#: Fig. 7 shapes.  ``gate`` marks the fused-run shapes (long scalar
#: runs) the 1.5x encode threshold applies to; the string-dominated
#: shapes are measured but not gated — fusion cannot help a record
#: whose cost is string copying.
CASES = {
    "FlowParams": {
        "gate": True,
        "record": dict(timestep=3, nx=64, ny=64, dx=30.0, dy=30.0,
                       dt=1.5, viscosity=0.125, rainfall=0.0625,
                       iterations=100, flags=0, elapsed=12.5),
    },
    "GridMeta": {
        "gate": True,
        "record": dict(timestep=3, nx=64, ny=64, west=0.0,
                       east=1920.0, south=0.0, north=1920.0,
                       cell_size=30.0, no_data=-9999.0, min_depth=0.0,
                       max_depth=2.5, mean_depth=0.25,
                       total_volume=1234.5, gauge_count=GAUGE_COUNT,
                       gauges=[i / 4 for i in range(GAUGE_COUNT)]),
    },
    "JoinRequest": {
        "gate": False,
        "record": dict(name="gauge-07", server=1, ip_addr=3232235777,
                       pid=1234, ds_addr=281474976710655),
    },
    "ControlMsg": {
        "gate": False,
        "record": dict(command="set_viscosity", target="flow2d",
                       timestep=5, value=0.375),
    },
}

BATCH_RECORDS = 512


def _format_for(label):
    ctx = IOContext(format_server=FormatServer())
    return ctx.register_layout(label, _SPECS[label])


@pytest.mark.parametrize("label", list(CASES))
@pytest.mark.parametrize("path", ["fused", "per-field"])
@pytest.mark.benchmark(group="ext-fused-encode")
def test_encode_latency(label, path, benchmark):
    fmt = _format_for(label)
    encoder = RecordEncoder(fmt, fuse=path == "fused")
    record = CASES[label]["record"]
    benchmark(lambda: encoder.encode_body(record))


@pytest.mark.parametrize("label", list(CASES))
@pytest.mark.parametrize("path", ["fused", "per-field"])
@pytest.mark.benchmark(group="ext-fused-decode")
def test_decode_latency(label, path, benchmark):
    fmt = _format_for(label)
    body = RecordEncoder(fmt).encode_body(CASES[label]["record"])
    decoder = RecordDecoder(fmt, fuse=path == "fused")
    benchmark(lambda: decoder.decode(body))


def test_fused_speedup_recorded(fused_metrics):
    """Measure fused-vs-baseline ratios on every shape and record
    them for the CI gate; assert a conservative floor here."""
    encode_out, decode_out = {}, {}
    for label, case in CASES.items():
        fmt = _format_for(label)
        record = case["record"]
        fused_e = RecordEncoder(fmt, fuse=True)
        plain_e = RecordEncoder(fmt, fuse=False)
        body = fused_e.encode_body(record)
        assert bytes(body) == bytes(plain_e.encode_body(record))
        fused_d = RecordDecoder(fmt, fuse=True)
        plain_d = RecordDecoder(fmt, fuse=False)

        te_fused = time_callable(
            lambda: fused_e.encode_body(record), repeat=7).best
        te_plain = time_callable(
            lambda: plain_e.encode_body(record), repeat=7).best
        td_fused = time_callable(
            lambda: fused_d.decode(body), repeat=7).best
        td_plain = time_callable(
            lambda: plain_d.decode(body), repeat=7).best

        encode_out[label] = {
            "fused_us": te_fused * 1e6,
            "per_field_us": te_plain * 1e6,
            "speedup": te_plain / te_fused,
            "gate": case["gate"],
        }
        decode_out[label] = {
            "fused_us": td_fused * 1e6,
            "per_field_us": td_plain * 1e6,
            "speedup": td_plain / td_fused,
            "gate": case["gate"],
        }
        if case["gate"]:
            # loose floor; check_fused_gate.py enforces the real 1.5x
            assert te_plain / te_fused > 1.2, (label, encode_out[label])
    fused_metrics["encode"] = encode_out
    fused_metrics["decode"] = decode_out


def test_batch_message_rate_recorded(fused_metrics):
    """Per-record DATA frames vs one DATA_BATCH over loopback TCP.

    Measured sequentially — send the whole burst, then drain it — so
    the numbers do not depend on thread scheduling.  512 FlowParams
    records fit comfortably inside the loopback socket buffer, so the
    send loop never blocks on the receiver."""
    server = FormatServer()
    send_ctx = IOContext(format_server=server)
    recv_ctx = IOContext(format_server=server)
    send_ctx.register_layout("FlowParams", _SPECS["FlowParams"])
    a_ch, b_ch = tcp_pair()
    sender = Connection(send_ctx, a_ch)
    receiver = Connection(recv_ctx, b_ch)
    record = CASES["FlowParams"]["record"]
    n = BATCH_RECORDS

    def single_pass():
        for _ in range(n):
            sender.send("FlowParams", record)
        for _ in range(n):
            receiver.receive(timeout=10)

    def batch_pass():
        sender.send_many("FlowParams", [record] * n)
        got = 0
        while got < n:
            got += len(receiver.receive_many(timeout=10))

    def best_rate(pass_fn, reps=7):
        # warmup inside time_callable also negotiates the format once
        return n / time_callable(pass_fn, repeat=reps, number=1).best

    try:
        single_rate = best_rate(single_pass)
        batch_rate = best_rate(batch_pass)
    finally:
        sender.close()
        receiver.close()

    fused_metrics["batch_message_rate"] = {
        "records": n,
        "per_record_rps": single_rate,
        "batched_rps": batch_rate,
        "speedup": batch_rate / single_rate,
    }
    # loose floor; check_fused_gate.py enforces the real 3x
    assert batch_rate / single_rate > 1.8, \
        fused_metrics["batch_message_rate"]
