#!/usr/bin/env python
"""CI regression gate for the encode-once broadcast fan-out.

Reads ``BENCH_fanout.json`` (written when the benchmark suite runs
``benchmarks/test_ext_fanout.py``) and fails unless the acceptance
shape holds:

* encode-once per-client cost stays roughly flat as subscribers grow:
  at every N it must be <= ``FLAT_MAX``x the N=1 cost (marshaling and
  framing are shared, so adding a subscriber adds only a queue append
  plus a share of a scatter-gather write);
* per-client marshaling strategies pay for every subscriber: at the
  largest N, XML-per-client must cost >= ``XML_MIN``x and
  encode-per-client >= ``PBIO_MIN``x the encode-once broadcast.

Usage::

    python benchmarks/check_fanout_gate.py [path/to/BENCH_fanout.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

FLAT_MAX = 2.0
XML_MIN = 2.0
PBIO_MIN = 1.2


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[1] / "BENCH_fanout.json"
    if not path.exists():
        print(f"gate: {path} missing — run the benchmark suite first "
              "(PYTHONPATH=src python -m pytest "
              "benchmarks/test_ext_fanout.py)")
        return 2
    data = json.loads(path.read_text())

    failures: list[str] = []
    strategies = ("encode_once", "encode_per_client", "xml_per_client")
    for strategy in strategies:
        rows = data.get(strategy)
        if not rows:
            failures.append(f"{strategy} missing from metrics")
            continue
        for key in sorted(rows, key=int):
            m = rows[key]
            print(f"{strategy:18s} N={m['clients']:4d}  "
                  f"total {m['total_s'] * 1e3:9.2f}ms  "
                  f"per-msg {m['per_message_us']:9.2f}us  "
                  f"per-client {m['per_client_us']:7.2f}us")
    if failures:
        print("\nGATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1

    once = data["encode_once"]
    base = min(once, key=int)
    base_cost = once[base]["per_client_us"]
    for key in sorted(once, key=int):
        ratio = once[key]["per_client_us"] / base_cost
        if ratio > FLAT_MAX:
            failures.append(
                f"encode-once per-client cost at N={key} is "
                f"{ratio:.2f}x the N={base} cost, above the "
                f"{FLAT_MAX}x flatness gate")

    n_max = max(once, key=int)
    once_total = once[n_max]["total_s"]
    xml_ratio = data["xml_per_client"][n_max]["total_s"] / once_total
    pbio_ratio = \
        data["encode_per_client"][n_max]["total_s"] / once_total
    print(f"\nat N={n_max}: xml-per-client {xml_ratio:.2f}x, "
          f"encode-per-client {pbio_ratio:.2f}x the encode-once "
          "broadcast")
    if xml_ratio < XML_MIN:
        failures.append(
            f"xml-per-client is only {xml_ratio:.2f}x encode-once at "
            f"N={n_max}, below the {XML_MIN}x gate")
    if pbio_ratio < PBIO_MIN:
        failures.append(
            f"encode-per-client is only {pbio_ratio:.2f}x encode-once "
            f"at N={n_max}, below the {PBIO_MIN}x gate")

    if failures:
        print("\nGATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
