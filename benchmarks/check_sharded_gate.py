#!/usr/bin/env python
"""CI regression gate for the sharded broadcast fan-out.

Reads ``BENCH_fanout_sharded.json`` (written when the benchmark suite
runs ``benchmarks/test_ext_fanout_sharded.py``) and enforces two
acceptance shapes:

* **encode-once counters** (machine-independent, always enforced):
  for every (clients, workers) cell the publisher marshaled each
  record exactly once, spilled each grid payload as a zero-copy
  segment, no worker process ever touched the encode path, and no
  frame was dropped;
* **speedup** (parallelism-aware): sharding only buys wall-clock when
  there are cores to run the shards on.  The benchmark records the
  runner's CPU count; with >= ``CPUS_FOR_2X`` cores the largest fleet
  must reach ``SPEEDUP_2W``x at 2 workers, with >= ``CPUS_FOR_4X``
  cores ``SPEEDUP_4W``x at 4 — otherwise the gate degrades to a
  no-regression floor (``FLOOR``x: shard coordination must not make
  the broadcast materially slower than one event loop);
* **per-client flatness**: at any worker count the per-client cost at
  the largest fleet stays within ``FLAT_MAX``x the smallest fleet's —
  sharding must preserve the encode-once amortization, not trade it
  for process parallelism.

Usage::

    python benchmarks/check_sharded_gate.py \\
        [path/to/BENCH_fanout_sharded.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SPEEDUP_2W = 1.6
SPEEDUP_4W = 2.5
CPUS_FOR_2X = 4
CPUS_FOR_4X = 6
FLOOR = 0.4
FLAT_MAX = 3.0


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[1] / \
        "BENCH_fanout_sharded.json"
    if not path.exists():
        print(f"gate: {path} missing — run the benchmark suite first "
              "(PYTHONPATH=src python -m pytest "
              "benchmarks/test_ext_fanout_sharded.py)")
        return 2
    data = json.loads(path.read_text())
    matrix = data.get("matrix", {})
    cpus = int(data.get("cpus", 1))
    failures: list[str] = []

    if not matrix:
        print("GATE FAILED:\n  - matrix missing from metrics")
        return 1

    for clients_key in sorted(matrix, key=int):
        for workers_key in sorted(matrix[clients_key], key=int):
            row = matrix[clients_key][workers_key]
            print(f"N={row['clients']:5d} workers={row['workers']}  "
                  f"total {row['total_s'] * 1e3:9.2f}ms  "
                  f"per-msg {row['per_message_us']:10.2f}us  "
                  f"per-client {row['per_client_us']:7.2f}us")
            # -- encode-once counters: never machine-dependent -------
            cell = f"N={clients_key} workers={workers_key}"
            if row["parent_records_encoded"] != row["messages"]:
                failures.append(
                    f"{cell}: publisher encoded "
                    f"{row['parent_records_encoded']} records for "
                    f"{row['messages']} messages — encode-once broken")
            if row["parent_spilled_segments"] < row["messages"]:
                failures.append(
                    f"{cell}: only {row['parent_spilled_segments']} "
                    f"zero-copy spill segments for {row['messages']} "
                    "grid messages — bulk fast path not engaged")
            if row["worker_records_encoded"] != 0:
                failures.append(
                    f"{cell}: workers encoded "
                    f"{row['worker_records_encoded']} records — "
                    "shards must fan out publisher bytes verbatim")
            if row["worker_bulk_ops"] != 0:
                failures.append(
                    f"{cell}: workers performed "
                    f"{row['worker_bulk_ops']} bulk codec ops")
            if row["frames_dropped"] != 0:
                failures.append(
                    f"{cell}: {row['frames_dropped']} frames dropped "
                    "under the block policy")

    # -- speedup: keyed off the recorded core count ------------------
    largest = max(matrix, key=int)
    rows = matrix[largest]
    base = rows.get("1")
    for workers_key, required, needed_cpus in (
            ("2", SPEEDUP_2W, CPUS_FOR_2X),
            ("4", SPEEDUP_4W, CPUS_FOR_4X)):
        row = rows.get(workers_key)
        if base is None or row is None:
            failures.append(
                f"N={largest}: missing workers=1 or "
                f"workers={workers_key} row")
            continue
        speedup = base["total_s"] / row["total_s"]
        if cpus >= needed_cpus:
            print(f"N={largest} workers={workers_key}: "
                  f"{speedup:.2f}x vs one worker "
                  f"(gate {required}x, {cpus} cpus)")
            if speedup < required:
                failures.append(
                    f"N={largest}: {speedup:.2f}x at "
                    f"{workers_key} workers, below the {required}x "
                    f"gate ({cpus} cpus available)")
        else:
            print(f"N={largest} workers={workers_key}: "
                  f"{speedup:.2f}x vs one worker (only {cpus} cpus — "
                  f"no-regression floor {FLOOR}x)")
            if speedup < FLOOR:
                failures.append(
                    f"N={largest}: sharding at {workers_key} workers "
                    f"is {speedup:.2f}x one worker — below the "
                    f"{FLOOR}x no-regression floor even for a "
                    f"{cpus}-cpu runner")

    # -- per-client flatness across fleet sizes ----------------------
    smallest = min(matrix, key=int)
    for workers_key in sorted(matrix[smallest], key=int):
        small = matrix[smallest].get(workers_key)
        large = matrix[largest].get(workers_key)
        if not small or not large:
            continue
        ratio = large["per_client_us"] / small["per_client_us"]
        print(f"workers={workers_key}: per-client cost "
              f"N={largest} / N={smallest} = {ratio:.2f}x")
        if ratio > FLAT_MAX:
            failures.append(
                f"workers={workers_key}: per-client cost grew "
                f"{ratio:.2f}x from N={smallest} to N={largest}, "
                f"above the {FLAT_MAX}x flatness gate")

    if failures:
        print("\nGATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
