"""Extension experiment — RPC call cost: XML-RPC vs XMIT-RPC.

The paper planned "SOAP/XML-RPC style interfaces" as future BCM
targets (section 3.2).  This bench runs the completed implementation:
the same ``stats`` service called through classic XML-RPC messages and
through XMIT-RPC (XML-discovered signatures, PBIO binary payloads),
over in-process channels so only marshaling cost differs.  The paper's
wire-format argument should carry over: binary calls dominate, and
increasingly so with payload size.
"""

import threading

import pytest

from repro.bench.timing import time_callable
from repro.rpc import BinaryRPCCodec, RPCClient, RPCServer, XMLRPCCodec
from repro.transport.inproc import channel_pair

SIGNATURES = """\
<xsd:schema xmlns:xsd="http://www.w3.org/2001/XMLSchema">
  <xsd:complexType name="statsParams">
    <xsd:element name="n" type="xsd:int" />
    <xsd:element name="values" type="xsd:double" maxOccurs="*"
                 dimensionName="n" />
  </xsd:complexType>
  <xsd:complexType name="statsResult">
    <xsd:element name="mean" type="xsd:double" />
    <xsd:element name="total" type="xsd:double" />
  </xsd:complexType>
</xsd:schema>
"""

SIZES = (10, 1000)


def _stats(params: dict) -> dict:
    values = params["values"]
    return {"mean": sum(values) / len(values), "total": sum(values)}


def _make_pair(protocol: str):
    codec = (XMLRPCCodec() if protocol == "xml"
             else BinaryRPCCodec(SIGNATURES))
    codec2 = (XMLRPCCodec() if protocol == "xml"
              else BinaryRPCCodec(SIGNATURES))
    client_ch, server_ch = channel_pair()
    server = RPCServer(codec, server_ch)
    server.register("stats", _stats)
    thread = server.serve_in_thread()
    client = RPCClient(codec2, client_ch)
    return client, thread


def _params(n: int, protocol: str) -> dict:
    values = [float(i) * 0.5 for i in range(n)]
    if protocol == "pbio":
        return {"n": n, "values": values}
    return {"values": values}


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("protocol", ("xml", "pbio"))
def test_ext_rpc_call(protocol, n, benchmark):
    benchmark.group = f"ext-rpc-{n}values"
    client, thread = _make_pair(protocol)
    params = _params(n, protocol)
    benchmark.pedantic(client.call, args=("stats", params),
                       rounds=5, iterations=2)
    client.close()
    thread.join(5)


@pytest.mark.benchmark(group="ext-rpc-shape")
def test_ext_rpc_binary_wins(benchmark):
    def sweep():
        results = {}
        for protocol in ("xml", "pbio"):
            client, thread = _make_pair(protocol)
            for n in SIZES:
                params = _params(n, protocol)
                cost = time_callable(
                    lambda: client.call("stats", params), repeat=2,
                    target_batch_seconds=0.01).best
                results[(protocol, n)] = cost
            client.close()
            thread.join(5)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for n in SIZES:
        ratio = results[("xml", n)] / results[("pbio", n)]
        assert ratio > 2.0, (n, results)
    # the gap widens with payload, as with the raw wire formats
    small = results[("xml", SIZES[0])] / results[("pbio", SIZES[0])]
    large = results[("xml", SIZES[-1])] / results[("pbio", SIZES[-1])]
    assert large > small, results
