"""Ablation — receiver-makes-right vs sender-makes-right.

Section 2's discussion (and reference [12]): marshal cost "is strongly
dependent on the 'wire format' used for data."  PBIO ships the
sender's native layout (near-memcpy send); XDR canonicalizes to
big-endian on send.  On a homogeneous little-endian pair — today's
common case — XDR pays conversion twice while PBIO pays none, which
is exactly the argument for receiver-makes-right.
"""

import pytest

from repro.bench import workloads
from repro.bench.timing import time_callable
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.pbio.machine import X86_64
from repro.wire import PBIOWireCodec, XDRWireCodec

RECORD = workloads.simple_data_record_for_bytes(10_000)


def _format():
    return IOFormat("SimpleData", field_list_for(
        [("timestep", "integer", 4), ("size", "integer", 4),
         ("data", "float[size]", 4)], architecture=X86_64))


@pytest.mark.benchmark(group="abl-conversion-send")
def test_abl_send_receiver_makes_right(benchmark):
    codec = PBIOWireCodec(_format())
    benchmark(codec.encode, RECORD)


@pytest.mark.benchmark(group="abl-conversion-send")
def test_abl_send_sender_makes_right(benchmark):
    codec = XDRWireCodec(_format())
    benchmark(codec.encode, RECORD)


@pytest.mark.benchmark(group="abl-conversion-roundtrip")
def test_abl_roundtrip_homogeneous_pair(benchmark):
    """Little-endian to little-endian: the receiver-makes-right
    design must win the whole exchange."""

    def sweep():
        pbio = PBIOWireCodec(_format())
        xdr = XDRWireCodec(_format())
        pbio_cost = time_callable(
            lambda: pbio.decode(pbio.encode(RECORD)), repeat=3).best
        xdr_cost = time_callable(
            lambda: xdr.decode(xdr.encode(RECORD)), repeat=3).best
        return pbio_cost, xdr_cost

    pbio_cost, xdr_cost = benchmark.pedantic(sweep, rounds=1,
                                             iterations=1)
    assert xdr_cost > 2.0 * pbio_cost, (pbio_cost, xdr_cost)
