#!/usr/bin/env python
"""CI regression gate for the telemetry layer's hot-path overhead.

Reads ``BENCH_obs.json`` (written when the benchmark suite runs
``benchmarks/test_ext_obs_overhead.py``) and fails unless the
acceptance thresholds hold:

* enabled telemetry (default 1-in-16 sample mask) costs at most
  ``ENABLED_MAX``x the no-op encode on every gate shape;
* the disabled hook itself costs at most ``HOOK_FRACTION_MAX`` of a
  no-op per-record encode on every gate shape.

Usage::

    python benchmarks/check_obs_gate.py [path/to/BENCH_obs.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

ENABLED_MAX = 1.05
HOOK_FRACTION_MAX = 0.01


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[1] / "BENCH_obs.json"
    if not path.exists():
        print(f"gate: {path} missing — run the benchmark suite first "
              "(PYTHONPATH=src python -m pytest "
              "benchmarks/test_ext_obs_overhead.py)")
        return 2
    data = json.loads(path.read_text())

    hook_ns = data.get("hook_ns")
    failures: list[str] = []
    for shape, m in sorted(data.get("encode", {}).items()):
        line = (f"encode {shape:14s} raw {m['raw_us']:7.2f}us  "
                f"noop {m['noop_us']:7.2f}us  "
                f"enabled {m['enabled_us']:7.2f}us  "
                f"{m['enabled_over_noop']:.3f}x" +
                ("" if m.get("gate") else "  (not gated)"))
        print(line)
        if not m.get("gate"):
            continue
        if m["enabled_over_noop"] > ENABLED_MAX:
            failures.append(
                f"enabled telemetry on {shape} is "
                f"{m['enabled_over_noop']:.3f}x no-op, above the "
                f"{ENABLED_MAX}x gate")
        if hook_ns is not None:
            fraction = hook_ns / (m["noop_us"] * 1e3)
            if fraction > HOOK_FRACTION_MAX:
                failures.append(
                    f"disabled hook is {fraction:.3%} of a {shape} "
                    f"encode, above the {HOOK_FRACTION_MAX:.0%} gate")

    if hook_ns is None:
        failures.append("hook_ns missing from metrics")
    else:
        print(f"hook   disabled sample_t0: {hook_ns:.0f}ns/call")

    if failures:
        print("\nGATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
