#!/usr/bin/env python
"""Regenerate every table/figure of the paper's evaluation section.

Prints, for each experiment, the same rows/series the paper plots,
with our measured numbers — this output is what EXPERIMENTS.md embeds.

Run:  python benchmarks/regen_experiments.py [--fast]
"""

from __future__ import annotations

import argparse
import sys

from repro.bench import workloads
from repro.bench.rdm import (
    build_subformats, measure_rdm, pbio_register, xmit_register,
)
from repro.bench.report import print_table
from repro.bench.timing import time_callable
from repro.hydrology import run_pipeline
from repro.pbio.format import IOFormat
from repro.pbio.layout import field_list_for
from repro.pbio.machine import X86_32
from repro.wire import codec_by_name


def simple_data_format() -> IOFormat:
    return IOFormat("SimpleData", field_list_for([
        ("timestep", "integer", 4), ("size", "integer", 4),
        ("data", "float[size]", 4)]))


def fig1(repeat: int) -> None:
    fmt = simple_data_format()
    record = workloads.simple_data_record(workloads.FIG1_FLOATS)
    xml = codec_by_name("xml", fmt)
    pbio = codec_by_name("pbio", fmt)
    xml_size = xml.encoded_size(record)
    bin_size = pbio.encoded_size(record)
    print_table(
        ["representation", "bytes", "expansion"],
        [("binary (PBIO)", bin_size, 1.0),
         ("XML (ASCII)", xml_size, round(xml_size / bin_size, 2))],
        title=f"Fig. 1 — SimpleData ({workloads.FIG1_FLOATS} values): "
              "XML expansion  [paper: ~3x; 6-8x typical]")


def _rdm_rows(cases, repeat: int):
    rows = []
    for case in cases:
        result = measure_rdm(case["xsd"], case["name"], case["specs"],
                             sample_record=case.get("record"),
                             subformat_specs=case.get("subformats"),
                             repeat=repeat)
        ilp32_sub = (build_subformats(case["subformats"], X86_32)
                     if case.get("subformats") else None)
        ilp32 = field_list_for(case["specs"], architecture=X86_32,
                               subformats=ilp32_sub).record_length
        rows.append((case["name"], ilp32, result.structure_size,
                     result.encoded_size or "-",
                     round(result.pbio.best_ms, 4),
                     round(result.xmit.best_ms, 4),
                     round(result.rdm, 2)))
    return rows


def fig3(repeat: int) -> None:
    print_table(
        ["structure", "ILP32 B", "native B", "encoded B", "PBIO ms",
         "XMIT ms", "RDM"],
        _rdm_rows(workloads.poc_cases(), repeat),
        title="Fig. 3 — registration costs, proof of concept  "
              "[paper: RDM 1.87-2.05 at 32/52/180 B]")


def fig6(repeat: int) -> None:
    print_table(
        ["structure", "ILP32 B", "native B", "encoded B", "PBIO ms",
         "XMIT ms", "RDM"],
        _rdm_rows(workloads.hydrology_cases(), repeat),
        title="Fig. 6 — registration costs, Hydrology  "
              "[paper: RDM 4 / 2.73 / 2.26 / 2.11 at 152/20/44/12 B]")


def fig7(repeat: int) -> None:
    labels = ["JoinRequest", "ControlMsg", "GridMeta",
              "SimpleData (65536 floats)"]
    rows = []
    for label, case in zip(labels, workloads.encoding_cases()):
        native_ctx = pbio_register(case["specs"], case["name"])
        xmit_ctx = xmit_register(case["xsd"], case["name"])
        encoded = native_ctx.encoded_size(case["name"], case["record"])

        def encode_with(ctx, case=case):
            encoder = ctx.encoder_for(ctx.lookup_format(case["name"]))
            record = case["record"]
            return lambda: encoder.encode_body(record)

        native = time_callable(encode_with(native_ctx),
                               repeat=repeat).best_ms
        via_xmit = time_callable(encode_with(xmit_ctx),
                                 repeat=repeat).best_ms
        rows.append((label, encoded, round(native, 5),
                     round(via_xmit, 5),
                     round(via_xmit / native, 2)))
    print_table(
        ["record", "encoded B", "PBIO-metadata ms",
         "XMIT-metadata ms", "ratio"],
        rows,
        title="Fig. 7 — encoding times with native vs XMIT-generated "
              "metadata  [paper: identical]")


def fig8(repeat: int) -> None:
    fmt = simple_data_format()
    codecs = {name: codec_by_name(name, fmt)
              for name in ("xml", "mpi", "cdr", "xdr", "pbio")}
    rows = []
    for size in workloads.FIG8_SIZES:
        record = workloads.simple_data_record_for_bytes(size)
        row = [f"{size} B"]
        for name in ("xml", "mpi", "cdr", "xdr", "pbio"):
            cost = time_callable(
                lambda c=codecs[name]: c.encode(record),
                repeat=2 if name == "xml" else repeat,
                target_batch_seconds=0.01).best_ms
            row.append(round(cost, 5))
        rows.append(tuple(row))
    print_table(
        ["binary size", "XML ms", "MPI ms", "CDR ms", "XDR ms",
         "PBIO ms"],
        rows,
        title="Fig. 8 — send-side encode times by mechanism  "
              "[paper: XML >> MPICH, CORBA >> PBIO, log scale]")


def s41(repeat: int) -> None:
    fmt = simple_data_format()
    xml = codec_by_name("xml", fmt)
    pbio = codec_by_name("pbio", fmt)
    rows = []
    for size in (1_000, 10_000, 100_000):
        record = workloads.simple_data_record_for_bytes(size)
        xml_cost = time_callable(
            lambda: xml.decode(xml.encode(record)), repeat=2,
            target_batch_seconds=0.01).best_ms
        bin_cost = time_callable(
            lambda: pbio.decode(pbio.encode(record)),
            repeat=repeat).best_ms
        rows.append((f"{size} B", round(xml_cost, 4),
                     round(bin_cost, 5),
                     round(xml_cost / bin_cost, 1)))
    print_table(
        ["binary size", "XML enc+dec ms", "PBIO enc+dec ms",
         "ratio"],
        rows,
        title="Sec. 4.1 — XML as a wire format  "
              "[paper: 2-4 orders of magnitude]")


def s42(repeat: int) -> None:
    case = [c for c in workloads.hydrology_cases()
            if c["name"] == "SimpleData"][0]
    record = workloads.simple_data_record(256)
    xmit_reg = time_callable(
        lambda: xmit_register(case["xsd"], "SimpleData"),
        repeat=repeat).best
    pbio_reg = time_callable(
        lambda: pbio_register(case["specs"], "SimpleData"),
        repeat=repeat).best
    ctx = pbio_register(case["specs"], "SimpleData")
    encoder = ctx.encoder_for(ctx.lookup_format("SimpleData"))
    send = time_callable(lambda: encoder.encode_body(record),
                         repeat=repeat).best
    overhead = xmit_reg - pbio_reg
    rows = [(n, round(overhead / n * 1e6, 3),
             round(overhead / (n * send), 2))
            for n in (1, 10, 100, 1000, 10000)]
    print_table(
        ["messages sent", "XMIT overhead per msg (us)",
         "overhead / send cost"],
        rows,
        title="Sec. 4.2 — remote-discovery cost amortization  "
              "[paper: amortized across the message set]")


def s4_latency(repeat: int) -> None:
    fmt = simple_data_format()
    record = workloads.simple_data_record(workloads.FIG1_FLOATS)
    xml = codec_by_name("xml", fmt)
    pbio = codec_by_name("pbio", fmt)
    xml_bytes = xml.encoded_size(record)
    bin_bytes = pbio.encoded_size(record)
    xml_cost = time_callable(lambda: xml.decode(xml.encode(record)),
                             repeat=2,
                             target_batch_seconds=0.01).best
    bin_cost = time_callable(lambda: pbio.decode(pbio.encode(record)),
                             repeat=repeat).best
    rows = []
    for label, bps in (("100 Mbit/s", 100e6), ("10 Mbit/s", 10e6)):
        xml_lat = xml_cost + xml_bytes * 8 / bps
        bin_lat = bin_cost + bin_bytes * 8 / bps
        rows.append((label, round(xml_lat * 1e3, 3),
                     round(bin_lat * 1e3, 3),
                     round(xml_lat / bin_lat, 1)))
    print_table(
        ["link", "XML latency ms", "XMIT/PBIO latency ms", "ratio"],
        rows,
        title=f"Sec. 4 — application message latency, "
              f"{workloads.FIG1_FLOATS}-value SimpleData "
              f"(sizes {xml_bytes} vs {bin_bytes} B)  "
              "[paper: 3x size -> 2x latency]")


def fig5(repeat: int) -> None:
    report = run_pipeline(timesteps=8, grid=32)
    rows = [(name, str(counts["in"]), str(counts["out"]))
            for name, counts in report.component_messages.items()]
    print_table(
        ["component", "messages in", "messages out"], rows,
        title=f"Fig. 5 — Hydrology pipeline run "
              f"({report.timesteps} timesteps, "
              f"{report.total_frames} frames delivered, "
              f"{report.elapsed_seconds:.3f}s)")


EXPERIMENTS = {
    "fig1": fig1, "fig3": fig3, "fig5": fig5, "fig6": fig6,
    "fig7": fig7, "fig8": fig8, "s41": s41, "s42": s42,
    "s4_latency": s4_latency,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="fewer repetitions (noisier numbers)")
    parser.add_argument("only", nargs="*", metavar="EXPERIMENT",
                        help=f"subset of: {', '.join(EXPERIMENTS)}")
    args = parser.parse_args()
    unknown = set(args.only) - set(EXPERIMENTS)
    if unknown:
        parser.error(f"unknown experiments {sorted(unknown)}; "
                     f"choose from {', '.join(EXPERIMENTS)}")
    repeat = 2 if args.fast else 5
    selected = args.only or list(EXPERIMENTS)
    for name in selected:
        EXPERIMENTS[name](repeat)
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
