"""Ablation — discovery source orthogonality (section 2).

"How metadata is provided to a BCM does not in any way influence how
that metadata is used for binding or marshaling."  The bench registers
the same format via compiled-in specs, ``mem:``, ``file:`` and
``http:`` discovery, then checks (a) discovery costs differ across
sources while (b) the resulting format — and therefore steady-state
encode cost — is byte-identical.
"""

import pytest

from repro.bench import workloads
from repro.bench.timing import time_callable
from repro.core.toolkit import XMIT
from repro.http.server import DocumentStore, MetadataHTTPServer
from repro.http.urls import publish_document
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer

CASE = [c for c in workloads.hydrology_cases()
        if c["name"] == "SimpleData"][0]
RECORD = workloads.simple_data_record(64)


def _register_via_url(url: str) -> IOContext:
    ctx = IOContext(format_server=FormatServer())
    xmit = XMIT()
    xmit.load_url(url)
    xmit.register_with_context(ctx, "SimpleData")
    return ctx


@pytest.fixture(scope="module")
def sources(tmp_path_factory):
    path = tmp_path_factory.mktemp("formats") / "simple.xsd"
    path.write_text(CASE["xsd"])
    store = DocumentStore()
    store.put("/simple.xsd", CASE["xsd"])
    server = MetadataHTTPServer(store)
    urls = {
        "mem": publish_document("abl-disc.xsd", CASE["xsd"]),
        "file": f"file://{path}",
        "http": server.url_for("/simple.xsd"),
    }
    yield urls
    server.close()


@pytest.mark.parametrize("source", ["mem", "file", "http"])
def test_abl_discovery_cost_by_source(source, sources, benchmark):
    benchmark.group = "abl-discovery-cost"
    benchmark(_register_via_url, sources[source])


@pytest.mark.benchmark(group="abl-discovery-cost")
def test_abl_discovery_compiled_in(benchmark):
    def register():
        ctx = IOContext(format_server=FormatServer())
        ctx.register_layout("SimpleData", CASE["specs"])
        return ctx
    benchmark(register)


@pytest.mark.benchmark(group="abl-discovery-cost")
def test_abl_discovery_remote_format_server(benchmark):
    """Registration against a network format server: the metadata is
    compiled-in but the registry round trip crosses loopback TCP."""
    from repro.pbio.remote_server import (
        FormatServerService, RemoteFormatServer,
    )
    with FormatServerService() as service:
        def register():
            remote = RemoteFormatServer.connect(service.host,
                                                service.port)
            try:
                ctx = IOContext(format_server=remote)
                ctx.register_layout("SimpleData", CASE["specs"])
                return ctx
            finally:
                remote.close()
        benchmark(register)


@pytest.mark.benchmark(group="abl-discovery-orthogonality")
def test_abl_marshaling_identical_across_sources(sources, benchmark):
    """The orthogonality claim itself: formats from every discovery
    source share a format ID, and their encode times agree."""

    def sweep():
        contexts = {name: _register_via_url(url)
                    for name, url in sources.items()}
        compiled = IOContext(format_server=FormatServer())
        compiled.register_layout("SimpleData", CASE["specs"])
        contexts["compiled"] = compiled
        ids = {name: ctx.lookup_format("SimpleData").format_id
               for name, ctx in contexts.items()}
        times = {}
        for name, ctx in contexts.items():
            encoder = ctx.encoder_for(ctx.lookup_format("SimpleData"))
            times[name] = time_callable(
                lambda: encoder.encode_body(RECORD), repeat=3).best
        return ids, times

    ids, times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len(set(ids.values())) == 1, ids
    fastest, slowest = min(times.values()), max(times.values())
    assert slowest / fastest < 2.0, times
