#!/usr/bin/env python
"""CI regression gate for the zero-copy bulk-array fast path.

Reads ``BENCH_bulk.json`` (written when the benchmark suite runs
``benchmarks/test_ext_bulk.py``) and fails unless the acceptance
thresholds hold:

* bulk encode >= ``SPEEDUP_MIN``x the per-element baseline on every
  array size;
* view decode-to-numpy >= ``SPEEDUP_MIN``x list decode + asarray on
  every array size;
* the ~1 MB fan-out payload moved as exactly one zero-copy spill
  segment with zero codec-side copies (counter proof, not timing).

Usage::

    python benchmarks/check_bulk_gate.py [path/to/BENCH_bulk.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

SPEEDUP_MIN = 3.0


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[1] / "BENCH_bulk.json"
    if not path.exists():
        print(f"gate: {path} missing — run the benchmark suite first "
              "(PYTHONPATH=src python -m pytest "
              "benchmarks/test_ext_bulk.py)")
        return 2
    data = json.loads(path.read_text())

    failures: list[str] = []
    encode = data.get("encode", {})
    decode = data.get("decode", {})
    if not encode or not decode:
        failures.append("encode/decode rows missing from metrics")
    for key, m in sorted(encode.items(), key=lambda kv: int(kv[0])):
        print(f"encode {m['elements']:7d} el  "
              f"bulk {m['bulk_us']:8.2f}us  "
              f"baseline {m['per_element_us']:9.2f}us  "
              f"{m['speedup']:.1f}x")
        if m["speedup"] < SPEEDUP_MIN:
            failures.append(
                f"encode speedup at {key} elements is "
                f"{m['speedup']:.2f}x, below the {SPEEDUP_MIN}x gate")
    for key, m in sorted(decode.items(), key=lambda kv: int(kv[0])):
        print(f"decode {m['elements']:7d} el  "
              f"view {m['view_us']:8.2f}us  "
              f"baseline {m['list_asarray_us']:9.2f}us  "
              f"{m['speedup']:.1f}x")
        if m["speedup"] < SPEEDUP_MIN:
            failures.append(
                f"decode speedup at {key} elements is "
                f"{m['speedup']:.2f}x, below the {SPEEDUP_MIN}x gate")

    fanout = data.get("fanout_single_copy")
    if fanout is None:
        failures.append("fanout_single_copy missing from metrics")
    else:
        print(f"fanout {fanout['elements']:7d} el "
              f"({fanout['payload_bytes']:,} B)  "
              f"parts {fanout['parts_join_us']:8.2f}us  "
              f"baseline {fanout['per_element_us']:9.2f}us  "
              f"{fanout['speedup']:.1f}x  "
              f"segments={fanout['spilled_segments']} "
              f"copies={fanout['copied_arrays']}")
        if fanout["spilled_segments"] != 1:
            failures.append(
                f"fan-out payload spilled as "
                f"{fanout['spilled_segments']} segments, expected "
                f"exactly 1")
        if fanout["copied_arrays"] != 0 or fanout["copied_bytes"] != 0:
            failures.append(
                f"fan-out payload was copied by the codec "
                f"({fanout['copied_arrays']} arrays, "
                f"{fanout['copied_bytes']} bytes) — single-copy "
                f"contract broken")
        if fanout["speedup"] < SPEEDUP_MIN:
            failures.append(
                f"fan-out speedup is {fanout['speedup']:.2f}x, below "
                f"the {SPEEDUP_MIN}x gate")

    if failures:
        print("\nGATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
