#!/usr/bin/env python
"""CI regression gate for catalog-scale lazy compile and warm start.

Reads ``BENCH_catalog.json`` (written when the benchmark suite runs
``benchmarks/test_ext_catalog.py``) and fails unless the acceptance
thresholds hold:

* the catalog run covered >= 10k formats, every one deferred, with no
  whole-document compile and only the bound format (plus dependencies)
  lazily compiled;
* binding one format cost < 2% of eagerly compiling the catalog;
* the warm restart did zero registration-phase work (no fetch /
  compile / bind / compile_plan spans -> RDM <= ``WARM_RDM_MAX``),
  served its plans as persistent-tier hits, and reached its first
  message >= ``COLD_WARM_RATIO_MIN``x faster than the cold path.

Usage::

    python benchmarks/check_catalog_gate.py [path/to/BENCH_catalog.json]
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

FORMATS_MIN = 10_000
LAZY_COMPILES_MAX = 3
FIRST_BIND_FRACTION_MAX = 0.02   # of the eager catalog compile
WARM_RDM_MAX = 1.2
COLD_WARM_RATIO_MIN = 1.2


def main(argv: list[str]) -> int:
    path = Path(argv[1]) if len(argv) > 1 else \
        Path(__file__).resolve().parents[1] / "BENCH_catalog.json"
    if not path.exists():
        print(f"gate: {path} missing — run the benchmark suite first "
              "(PYTHONPATH=src python -m pytest "
              "benchmarks/test_ext_catalog.py)")
        return 2
    data = json.loads(path.read_text())

    failures: list[str] = []
    cat = data.get("catalog", {})
    warm = data.get("warm_start", {})
    if not cat or not warm:
        failures.append("catalog/warm_start sections missing")

    if cat:
        print(f"catalog  {cat['formats']} formats  "
              f"lazy load {cat['lazy_load_s']:.2f}s  "
              f"eager load {cat['eager_load_s']:.2f}s  "
              f"first bind {cat['first_bind_us']:.0f}us")
        if cat["formats"] < FORMATS_MIN:
            failures.append(
                f"catalog covered {cat['formats']} formats, below "
                f"the {FORMATS_MIN} gate")
        if cat["deferred_formats"] != cat["formats"]:
            failures.append(
                f"only {cat['deferred_formats']} of {cat['formats']} "
                "formats were deferred")
        if cat["lazy_document_compiles"] != 0:
            failures.append(
                "lazy load performed a whole-document compile")
        if not 1 <= cat["lazy_compiles_after_bind"] \
                <= LAZY_COMPILES_MAX:
            failures.append(
                f"{cat['lazy_compiles_after_bind']} lazy compiles "
                f"after one bind (expected 1..{LAZY_COMPILES_MAX})")
        bind_fraction = cat["first_bind_us"] / \
            (cat["eager_compile_s"] * 1e6)
        if bind_fraction > FIRST_BIND_FRACTION_MAX:
            failures.append(
                f"first bind cost {bind_fraction:.1%} of the eager "
                f"catalog compile (gate "
                f"{FIRST_BIND_FRACTION_MAX:.0%})")

    if warm:
        print(f"warm     cold {warm['cold_first_message_us']:.0f}us  "
              f"warm {warm['warm_first_message_us']:.0f}us  "
              f"ratio {warm['cold_warm_ratio']:.2f}x  "
              f"rdm {warm['warm_rdm']:.3f}")
        if warm["warm_compile_spans"] != 0:
            failures.append(
                f"warm restart ran {warm['warm_compile_spans']} "
                "registration-phase spans (expected 0)")
        if warm["warm_disk_hits"] < 2 or \
                warm["warm_plan_load_spans"] < 2:
            failures.append(
                "warm restart did not serve both plans from the "
                f"persistent tier (hits={warm['warm_disk_hits']}, "
                f"loads={warm['warm_plan_load_spans']})")
        if warm["warm_rdm"] > WARM_RDM_MAX:
            failures.append(
                f"warm-start RDM {warm['warm_rdm']:.3f} exceeds "
                f"{WARM_RDM_MAX}")
        if warm["cold_warm_ratio"] < COLD_WARM_RATIO_MIN:
            failures.append(
                f"cold/warm first-message ratio "
                f"{warm['cold_warm_ratio']:.2f}x is below the "
                f"{COLD_WARM_RATIO_MIN}x gate")

    if failures:
        print("\ngate FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\ngate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
