"""Ablation — what restricted evolution costs at decode time.

Old receivers of evolved formats run a conversion plan (project +
default) per record.  The plan is compiled once per (wire, native)
pair; the bench verifies the steady-state overhead over an identity
decode is a small constant, not proportional to plan construction.
"""

import pytest

from repro.bench import workloads
from repro.bench.timing import time_callable
from repro.pbio.context import IOContext
from repro.pbio.format_server import FormatServer

V1_SPECS = [("timestep", "integer", 4), ("size", "integer", 4),
            ("data", "float[size]", 4)]
V2_SPECS = V1_SPECS + [("units", "string"), ("quality", "float", 8)]
RECORD_V2 = dict(workloads.simple_data_record(256), units="m",
                 quality=0.9)


def _wire_and_receiver():
    server = FormatServer()
    sender = IOContext(format_server=server)
    receiver = IOContext(format_server=server)
    sender.register_layout("S", V2_SPECS)
    receiver.register_layout("S", V1_SPECS)
    wire = sender.encode("S", RECORD_V2)
    return wire, receiver


@pytest.mark.benchmark(group="abl-evolution-decode")
def test_abl_decode_identity(benchmark):
    server = FormatServer()
    ctx = IOContext(format_server=server)
    ctx.register_layout("S", V1_SPECS)
    wire = ctx.encode("S", workloads.simple_data_record(256))
    benchmark(ctx.decode_as, wire, "S")


@pytest.mark.benchmark(group="abl-evolution-decode")
def test_abl_decode_with_conversion(benchmark):
    wire, receiver = _wire_and_receiver()
    receiver.decode_as(wire, "S")  # compile the plan up front
    benchmark(receiver.decode_as, wire, "S")


@pytest.mark.benchmark(group="abl-evolution-shape")
def test_abl_conversion_overhead_is_bounded(benchmark):
    def sweep():
        wire, receiver = _wire_and_receiver()
        receiver.decode_as(wire, "S")
        converted = time_callable(
            lambda: receiver.decode_as(wire, "S"), repeat=3).best
        server = FormatServer()
        ctx = IOContext(format_server=server)
        ctx.register_layout("S", V1_SPECS)
        plain_wire = ctx.encode("S", workloads.simple_data_record(256))
        identity = time_callable(
            lambda: ctx.decode_as(plain_wire, "S"), repeat=3).best
        return identity, converted

    identity, converted = benchmark.pedantic(sweep, rounds=1,
                                             iterations=1)
    # conversion decodes a larger wire record and projects; allow a
    # generous constant factor but nothing pathological
    assert converted < 5.0 * identity, (identity, converted)
