"""Ablation — what restricted evolution costs, on both sides.

Old receivers of evolved formats run a conversion plan (project +
default) per record.  The plan is compiled once per (wire, native)
pair; the bench verifies the steady-state overhead over an identity
decode is a small constant, not proportional to plan construction.

The sender side is the rolling-upgrade path: a publisher that has cut
over to a new version keeps stale negotiated subscribers fed through a
cached :class:`~repro.pbio.evolution.DownConverter`.  Per shape the
sweep records what one down-converted frame costs next to what the
stale subscriber pays to decode a native frame anyway — the numbers
land in ``BENCH_evolution.json`` and
``benchmarks/check_evolution_gate.py`` enforces the acceptance bound
(record-path down-conversion within 2x of a native decode).
"""

import pytest

from repro.bench import workloads
from repro.bench.timing import time_callable
from repro.pbio.context import IOContext
from repro.pbio.evolution import down_converter
from repro.pbio.format_server import FormatServer

V1_SPECS = [("timestep", "integer", 4), ("size", "integer", 4),
            ("data", "float[size]", 4)]
V2_SPECS = V1_SPECS + [("units", "string"), ("quality", "float", 8)]
RECORD_V2 = dict(workloads.simple_data_record(256), units="m",
                 quality=0.9)


def _wire_and_receiver():
    server = FormatServer()
    sender = IOContext(format_server=server)
    receiver = IOContext(format_server=server)
    sender.register_layout("S", V2_SPECS)
    receiver.register_layout("S", V1_SPECS)
    wire = sender.encode("S", RECORD_V2)
    return wire, receiver


@pytest.mark.benchmark(group="abl-evolution-decode")
def test_abl_decode_identity(benchmark):
    server = FormatServer()
    ctx = IOContext(format_server=server)
    ctx.register_layout("S", V1_SPECS)
    wire = ctx.encode("S", workloads.simple_data_record(256))
    benchmark(ctx.decode_as, wire, "S")


@pytest.mark.benchmark(group="abl-evolution-decode")
def test_abl_decode_with_conversion(benchmark):
    wire, receiver = _wire_and_receiver()
    receiver.decode_as(wire, "S")  # compile the plan up front
    benchmark(receiver.decode_as, wire, "S")


@pytest.mark.benchmark(group="abl-evolution-shape")
def test_abl_conversion_overhead_is_bounded(benchmark):
    def sweep():
        wire, receiver = _wire_and_receiver()
        receiver.decode_as(wire, "S")
        converted = time_callable(
            lambda: receiver.decode_as(wire, "S"), repeat=3).best
        server = FormatServer()
        ctx = IOContext(format_server=server)
        ctx.register_layout("S", V1_SPECS)
        plain_wire = ctx.encode("S", workloads.simple_data_record(256))
        identity = time_callable(
            lambda: ctx.decode_as(plain_wire, "S"), repeat=3).best
        return identity, converted

    identity, converted = benchmark.pedantic(sweep, rounds=1,
                                             iterations=1)
    # conversion decodes a larger wire record and projects; allow a
    # generous constant factor but nothing pathological
    assert converted < 5.0 * identity, (identity, converted)


# -- sender-side down-conversion (the rolling-upgrade path) -----------------

#: array elements per shape; the string/scalar tail of V2 is fixed
_SENDER_SHAPES = {"data-64": 64, "data-1k": 1024, "data-4k": 4096}


def _sender_fixture(elements: int):
    """(old ctx, converter, new record, new wire, old wire)."""
    ctx = IOContext(format_server=FormatServer())
    old = ctx.register_layout("S", V1_SPECS)
    new_ctx = IOContext(format_server=FormatServer())
    new = new_ctx.register_layout("S", V2_SPECS)
    record = dict(workloads.simple_data_record(elements),
                  units="m", quality=0.9)
    conv = down_converter(new, old)
    new_wire = new_ctx.encode("S", record)
    old_wire = conv.encode_record(record)
    return ctx, conv, record, new_wire, old_wire


def _ab_best(fn_a, fn_b, *, rounds: int = 5):
    """Alternate the two measurements so machine drift hits both sides
    equally (same discipline as the hardening sweep)."""
    best_a = best_b = float("inf")
    for _ in range(rounds):
        best_a = min(best_a, time_callable(fn_a, repeat=3).best)
        best_b = min(best_b, time_callable(fn_b, repeat=3).best)
    return best_a, best_b


@pytest.mark.parametrize("shape", list(_SENDER_SHAPES))
@pytest.mark.parametrize("path", ["native_decode", "down_convert"])
@pytest.mark.benchmark(group="abl-evolution-sender")
def test_sender_latency(shape, path, benchmark):
    ctx, conv, record, _new_wire, old_wire = _sender_fixture(
        _SENDER_SHAPES[shape])
    if path == "native_decode":
        benchmark(lambda: ctx.decode(old_wire))
    else:
        benchmark(lambda: conv.encode_record(record))


def test_evolution_cost_recorded(evolution_metrics):
    """Record, per shape, what a stale subscriber's frame costs the
    publisher (record path) and a relay (wire path) next to the native
    decode that subscriber performs anyway."""
    shapes = {}
    for shape, elements in _SENDER_SHAPES.items():
        ctx, conv, record, new_wire, old_wire = _sender_fixture(
            elements)
        # the converted frame must be exactly what a native old-version
        # encoder produces before any timing means anything
        assert ctx.decode(old_wire).record["size"] == elements
        assert conv.convert_wire(new_wire) == old_wire

        down_t, native_t = _ab_best(
            lambda: conv.encode_record(record),
            lambda: ctx.decode(old_wire))
        relay_t = min(time_callable(
            lambda: conv.convert_wire(new_wire), repeat=3).best
            for _ in range(5))
        shapes[shape] = {
            "elements": elements,
            "native_decode_us": native_t * 1e6,
            "down_convert_us": down_t * 1e6,
            "relay_convert_us": relay_t * 1e6,
            "down_convert_over_native_decode": down_t / native_t,
            "relay_convert_over_native_decode": relay_t / native_t,
        }
        # loose in-test ceiling; check_evolution_gate.py enforces the
        # real 2x bound
        assert down_t / native_t < 3.0, (shape, shapes[shape])

    evolution_metrics["sender"] = shapes

